"""Distributed model prediction (Algorithm 4 and §5.2).

**Basic protocol** (plaintext tree, Algorithm 4): the clients update an
encrypted prediction vector [η] of size t+1 in a round-robin manner; each
client multiplies in, for every leaf, a 0/1 factor obtained by comparing
her own feature values against the thresholds of the internal nodes she
owns.  After all m updates exactly one [1] survives, and client u_1
computes [k̄] = z ⊙ [η] with the public leaf-label vector z; the clients
jointly decrypt [k̄].

**Enhanced protocol** (§5.2 "Secret sharing based model prediction"): split
thresholds and leaf labels exist only in secretly shared form; feature
values are secret-shared by their owners, a marker is propagated from the
root with one secure comparison per internal node, and the prediction is
the inner product ⟨z⟩·⟨η⟩, revealed alone.

Party locality: every entry point takes the sample as *per-party slices* —
each client's own columns of the row, exactly what a real deployment's
parties would hold.  ``party_slices`` (one ``n × d_i`` block per client)
is the federation API's native input; the ``row``-based wrappers split a
caller-supplied global row for single-process convenience (the caller owns
that row — splitting it reads no party's stored columns).  Training rows
are sliced with :func:`local_slices_for_sample`, which reads each client's
columns inside her own party scope.

The public ``predict_basic`` / ``predict_enhanced`` / ``predict_batch``
names are deprecation shims for the pre-federation flat API; new code goes
through :class:`repro.federation.PivotClassifier` /
:class:`~repro.federation.PivotRegressor` (or the ``run_predict_*``
internals these shims forward to).
"""

from __future__ import annotations

import numpy as np

from repro.core._deprecation import warn_deprecated as _warn_deprecated
from repro.core.context import PivotContext
from repro.crypto.encoding import EncryptedNumber, encrypted_dot_product
from repro.mpc import comparison
from repro.tree.model import DecisionTreeModel, TreeNode

__all__ = [
    "enhanced_prediction_share",
    "global_rows_to_party_slices",
    "local_slices_for_sample",
    "predict_basic",
    "predict_basic_encrypted",
    "predict_batch",
    "predict_enhanced",
    "run_predict_basic",
    "run_predict_batch",
    "run_predict_batch_slices",
    "run_predict_enhanced",
]


# ---------------------------------------------------------------------------
# sample slicing
# ---------------------------------------------------------------------------


def _local_slices(context: PivotContext, row: np.ndarray) -> list[np.ndarray]:
    """Split a caller-supplied global feature row into per-party slices."""
    return [
        np.asarray([row[c] for c in cols], dtype=np.float64)
        for cols in context.partition.columns_per_client
    ]


def global_rows_to_party_slices(
    context: PivotContext, rows: np.ndarray
) -> list[np.ndarray]:
    """Split caller-held global rows into per-party column blocks.

    The single source of truth for the column assignment when a
    single-process caller holds the full matrix (prediction wrappers,
    ``Federation.slices``); real deployments pass per-party blocks
    directly.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    return [
        rows[:, list(cols)] for cols in context.partition.columns_per_client
    ]


def local_slices_for_sample(context: PivotContext, t: int) -> list[np.ndarray]:
    """Per-party slices of *training* sample ``t``.

    Each client reads her own columns inside her party scope — the
    locality-respecting replacement for reassembling a global training
    matrix in one place.
    """
    return [client.local_row(t) for client in context.clients]


def _slices_per_row(
    context: PivotContext, party_slices: list[np.ndarray]
) -> list[list[np.ndarray]]:
    """Transpose per-party blocks (m arrays of n × d_i) into per-row slices."""
    blocks = [np.atleast_2d(np.asarray(block, dtype=np.float64)) for block in party_slices]
    if len(blocks) != context.n_clients:
        raise ValueError(
            f"expected {context.n_clients} per-party feature blocks, "
            f"got {len(blocks)}"
        )
    n = blocks[0].shape[0]
    for client, block in zip(context.clients, blocks):
        if block.shape[0] != n:
            raise ValueError("per-party blocks disagree on sample count")
        if block.shape[1] != client.n_features:
            raise ValueError(
                f"party {client.index} block has {block.shape[1]} columns, "
                f"she owns {client.n_features}"
            )
    return [[block[t] for block in blocks] for t in range(n)]


# ---------------------------------------------------------------------------
# basic protocol (Algorithm 4)
# ---------------------------------------------------------------------------


def predict_basic_encrypted_slices(
    model: DecisionTreeModel, context: PivotContext, slices: list[np.ndarray]
) -> EncryptedNumber:
    """Algorithm 4 up to (excluding) the final joint decryption.

    Returns [k̄] — used directly by the ensembles, which aggregate encrypted
    per-tree predictions before anything is revealed (§7).
    """
    ctx = context
    leaves = model.leaves()
    paths = model.leaf_paths()

    # u_m initialises [η] = ([1], ..., [1]) (Algorithm 4 line 3), batched.
    eta = ctx.batch.encrypt_vector([1] * len(leaves), exponent=0)
    for client_index in reversed(range(ctx.n_clients)):
        local = slices[client_index]
        for leaf_pos, path in enumerate(paths):
            factor = 1
            for node, direction in path:
                if node.owner != client_index:
                    continue
                if node.threshold is None or node.feature is None:
                    raise ValueError(
                        "basic prediction needs a plaintext tree; use "
                        "the enhanced prediction for hidden models"
                    )
                goes_left = local[node.feature] <= node.threshold
                matches = (direction == 0) == goes_left
                factor &= int(matches)
            # Possible paths keep their value (x1); impossible ones are
            # zeroed (x0).  Both are homomorphic multiplications (§4.3).
            eta[leaf_pos] = eta[leaf_pos] * factor
        if client_index > 0:
            ctx.bus.send_payload(
                client_index, client_index - 1, eta, tag="prediction-vector"
            )
            ctx.bus.round()

    # u_1: [k̄] = z ⊙ [η] (line 10).
    if model.task == "classification":
        coefficients = [int(leaf.prediction) for leaf in leaves]
        exponent = 0
    else:
        encoded = [ctx.encoder.encode(float(leaf.prediction)) for leaf in leaves]
        coefficients = [e.encoding for e in encoded]
        exponent = -ctx.encoder.frac_bits
    result = encrypted_dot_product(coefficients, eta)
    return ctx.encoder.wrap(result.ciphertext, exponent)


def predict_basic_encrypted(
    model: DecisionTreeModel, context: PivotContext, row: np.ndarray
) -> EncryptedNumber:
    """`predict_basic_encrypted_slices` over a caller-held global row."""
    return predict_basic_encrypted_slices(model, context, _local_slices(context, row))


def run_predict_basic(
    model: DecisionTreeModel, context: PivotContext, row: np.ndarray
) -> float | int:
    """Full Algorithm 4: encrypted round-robin + joint decryption."""
    encrypted = predict_basic_encrypted(model, context, row)
    value = context.joint_decrypt(encrypted, tag="prediction-output")
    if model.task == "classification":
        return int(round(value))
    return float(value)


# ---------------------------------------------------------------------------
# enhanced protocol (§5.2)
# ---------------------------------------------------------------------------


def enhanced_prediction_share(
    model: DecisionTreeModel, context: PivotContext, slices: list[np.ndarray]
):
    """§5.2 prediction kept in shared form: returns (⟨k̄⟩, label_scale).

    The building block for both single predictions (open the share) and
    ensemble aggregation (combine shares of several trees before anything
    is revealed).  Raises if the hidden leaves carry mixed label scales:
    the shared inner product sums over the leaves, so only a uniform scale
    can be applied after opening.
    """
    ctx, fx = context, context.fx
    engine = ctx.engine

    def walk(node: TreeNode, marker) -> list:
        if node.is_leaf:
            return [(node, marker)]
        threshold_share = node.hidden.get("threshold_share")
        if threshold_share is None:
            raise ValueError("node lacks a shared threshold; not an enhanced model")
        value = float(slices[node.owner][node.feature])
        x_share = engine.input_private(fx.encode(value), owner=node.owner)
        goes_left = comparison.le(engine, x_share, threshold_share, fx.k)
        left_marker = engine.mul(marker, goes_left)
        right_marker = marker - left_marker
        return walk(node.left, left_marker) + walk(node.right, right_marker)

    leaf_markers = walk(model.root, engine.share_public(1))
    # η in canonical leaf order; z from the hidden leaf labels.
    eta, z_shares, scales = [], [], []
    for node, marker in leaf_markers:
        label_share = node.hidden.get("label_share")
        if label_share is None:
            raise ValueError("leaf lacks a shared label; not an enhanced model")
        eta.append(marker)
        z_shares.append(label_share)
        scales.append(node.hidden.get("label_scale", 1.0))
    scale = scales[0] if scales else 1.0
    # A single label scale must apply to all leaves: the inner product sums
    # over them, and mixed per-leaf scales cannot be rescaled after the
    # sum.  Training guarantees uniformity (one provider per tree);
    # hand-built models that violate it are refused rather than silently
    # rescaled by scales[0].
    mixed = {s for s in scales if s != scale}
    if mixed:
        raise ValueError(
            f"enhanced model has mixed per-leaf label scales {sorted(mixed | {scale})}; "
            "the shared inner product admits only a uniform scale"
        )
    return engine.inner_product(eta, z_shares), scale


def run_predict_enhanced(
    model: DecisionTreeModel,
    context: PivotContext,
    row: np.ndarray | None = None,
    slices: list[np.ndarray] | None = None,
) -> float | int:
    """§5.2 prediction over the secretly shared model (opens one value)."""
    if slices is None:
        if row is None:
            raise ValueError("need a global row or per-party slices")
        slices = _local_slices(context, np.asarray(row))
    prediction_share, scale = enhanced_prediction_share(model, context, slices)
    value = context.open_value(prediction_share, tag="prediction-output")
    if model.task == "classification":
        return int(round(value))
    return float(value * scale)


# ---------------------------------------------------------------------------
# batched prediction
# ---------------------------------------------------------------------------


def run_predict_batch_slices(
    model: DecisionTreeModel,
    context: PivotContext,
    party_slices: list[np.ndarray],
    protocol: str = "basic",
) -> np.ndarray:
    """Predict many samples from per-party feature blocks.

    ``party_slices`` is the federation-native input: one ``n × d_i`` block
    per client, each holding only that party's columns.  Basic prediction
    batches the per-row joint decryptions: the n encrypted outputs [k̄] go
    through one threshold-decryption fan-out (``joint_decrypt_batch``)
    instead of n serial ones — identical Ce/Cd op counts and results, one
    message flow.
    """
    rows = _slices_per_row(context, party_slices)
    if protocol == "basic":
        encrypted = [
            predict_basic_encrypted_slices(model, context, slices)
            for slices in rows
        ]
        values = context.joint_decrypt_batch(encrypted, tag="prediction-output")
        if model.task == "classification":
            out = [int(round(v)) for v in values]
        else:
            out = [float(v) for v in values]
    elif protocol == "enhanced":
        out = [
            run_predict_enhanced(model, context, slices=slices) for slices in rows
        ]
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    if model.task == "classification":
        return np.asarray(out, dtype=np.int64)
    return np.asarray(out, dtype=np.float64)


def run_predict_batch(
    model: DecisionTreeModel,
    context: PivotContext,
    rows: np.ndarray,
    protocol: str = "basic",
) -> np.ndarray:
    """`run_predict_batch_slices` over caller-held global rows."""
    party_slices = global_rows_to_party_slices(context, rows)
    return run_predict_batch_slices(model, context, party_slices, protocol)


# ---------------------------------------------------------------------------
# deprecated flat-API entry points
# ---------------------------------------------------------------------------


def predict_basic(
    model: DecisionTreeModel, context: PivotContext, row: np.ndarray
) -> float | int:
    """Deprecated: use the federation estimators (or run_predict_basic)."""
    _warn_deprecated("predict_basic", "PivotClassifier/PivotRegressor.predict")
    return run_predict_basic(model, context, row)


def predict_enhanced(
    model: DecisionTreeModel, context: PivotContext, row: np.ndarray
) -> float | int:
    """Deprecated: use the federation estimators (or run_predict_enhanced)."""
    _warn_deprecated(
        "predict_enhanced", "PivotClassifier(protocol='enhanced').predict"
    )
    return run_predict_enhanced(model, context, row)


def predict_batch(
    model: DecisionTreeModel,
    context: PivotContext,
    rows: np.ndarray,
    protocol: str = "basic",
) -> np.ndarray:
    """Deprecated: use the federation estimators (or run_predict_batch)."""
    _warn_deprecated("predict_batch", "PivotClassifier/PivotRegressor.predict")
    return run_predict_batch(model, context, rows, protocol)
