"""Vertical logistic regression following the Pivot recipe (paper §7.3).

The paper sketches how the TPHE + MPC hybrid generalises beyond trees;
this module implements that sketch as a working trainer:

* Each client holds an encrypted weight block [θ_i] for her own features
  (nobody, including the owner, sees the weights in plaintext).
* Per sample, each client locally aggregates the encrypted partial sum
  [ξ_i] = x_i ⊙ [θ_i]; the sums are combined homomorphically and converted
  to shares (Algorithm 2) for the secure logistic function (secure exp +
  division); the super client supplies the label as a secret share.
* The shared loss is converted back to a ciphertext (§5.2) and every client
  updates her encrypted weights with homomorphic operations, never learning
  the loss.

Training is mini-batch gradient descent; weight ciphertexts are refreshed
through a share round-trip at the end of every epoch so the fixed-point
exponent stays bounded.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.context import PivotContext
from repro.crypto.encoding import EncryptedNumber, encrypted_dot_product
from repro.network.flows import collect_replies, react_runtimes
from repro.network.wire import Request

__all__ = ["LogisticTrainer", "PivotLogisticRegression"]


class LogisticTrainer:
    """Binary logistic regression over a vertical partition.

    The implementation behind
    :class:`repro.federation.PivotLogisticClassifier` (and the deprecated
    :class:`PivotLogisticRegression` flat-API shim).  Unlike the trees there
    is no released model to protect, so the basic/enhanced distinction does
    not arise: weights and losses are hidden end to end either way.
    """

    def __init__(
        self,
        context: PivotContext,
        learning_rate: float = 0.5,
        n_epochs: int = 3,
        batch_size: int = 16,
    ):
        if context.partition.task != "classification":
            raise ValueError("logistic regression needs a classification partition")
        if not 0 < learning_rate <= 2:
            raise ValueError("learning_rate out of range")
        self.ctx = context
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        # Per-client encrypted weight blocks; exponent -2F stays invariant
        # under the homomorphic update rule.
        self.weights: list[list[EncryptedNumber]] | None = None

    # ------------------------------------------------------------------

    def fit(self) -> "LogisticTrainer":
        ctx, fx = self.ctx, self.ctx.fx
        labels = np.asarray(ctx.read_labels(), dtype=np.int64)
        if set(np.unique(labels)) - {0, 1}:
            raise ValueError("binary labels {0,1} required")
        n = ctx.n_samples
        encoder = ctx.encoder
        two_f = 2 * encoder.frac_bits
        self.weights = [
            [encoder.encrypt(0, exponent=-two_f) for _ in range(client.n_features)]
            for client in ctx.clients
        ]
        # The super client secret-shares every label once.
        label_shares = ctx.engine.input_many(
            [fx.encode(int(y)) for y in labels], owner=ctx.super_client
        )

        for _ in range(self.n_epochs):
            for start in range(0, n, self.batch_size):
                batch = range(start, min(start + self.batch_size, n))
                losses = self._batch_losses(list(batch), label_shares)
                self._apply_updates(list(batch), losses)
            self._refresh_weights()
        return self

    def _batch_losses(self, batch: list[int], label_shares) -> list:
        """⟨σ(x·θ) - y⟩ for each sample of the batch.

        Request/response flow: the super client sends every other party an
        ``lr-batch-sums`` request carrying the batch rows and her encrypted
        weight block; the party reacts on her own event loop —
        ``client.batch_sums`` over *her* columns, in her own process when
        she runs standalone — and replies with the per-sample partial-sum
        ciphertexts.  Only ciphertexts travel in either direction.
        """
        ctx, fx = self.ctx, self.ctx.fx
        sup = ctx.super_client
        for client, block in zip(ctx.clients, self.weights):
            if client.index == sup:
                continue
            ctx.bus.send_payload(
                sup,
                client.index,
                Request("lr-batch-sums", [batch, block]),
                tag="lr-partial-sum",
            )
        react_runtimes(ctx.runtimes, exclude=(sup,))
        own_partials = ctx.clients[sup].batch_sums(batch, self.weights[sup])
        others = [c.index for c in ctx.clients if c.index != sup]
        replies = collect_replies(ctx.bus, sup, others)
        ctx.bus.round()
        partials_per_client = [
            own_partials if client.index == sup else list(replies[client.index])
            for client in ctx.clients
        ]
        xi_cts = []
        for k, _ in enumerate(batch):
            total = None
            for partials in partials_per_client:
                partial = partials[k]
                total = partial if total is None else total + partial
            xi_cts.append(total)
        z_shares = ctx.to_shares(xi_cts)
        losses = []
        for t, z in zip(batch, z_shares):
            sigma = fx.div(fx.share(1.0), fx.share(1.0) + fx.exp(-z))
            losses.append(sigma - label_shares[t])
        return losses

    def _apply_updates(self, batch: list[int], losses) -> None:
        """[θ_ij] -= (lr/|B|) Σ_t x_tij ⊗ [loss_t], all homomorphic.

        The gradient fold reads raw feature values, so it runs as each
        party's own reaction: an ``lr-update`` request ships the rows, her
        current encrypted block, the encrypted losses and the step scale;
        she folds her columns in locally and replies with the updated
        block ciphertexts.  Weights stay encrypted end to end — the blocks
        travelling in both directions are ciphertext vectors.
        """
        ctx = self.ctx
        sup = ctx.super_client
        loss_cts = [ctx.to_cipher(loss) for loss in losses]
        scale = self.learning_rate / len(batch)
        for client, block in zip(ctx.clients, self.weights):
            if client.index == sup:
                continue
            ctx.bus.send_payload(
                sup,
                client.index,
                Request("lr-update", [batch, block, loss_cts, scale]),
                tag="lr-weights",
            )
        react_runtimes(ctx.runtimes, exclude=(sup,))
        own_updated = ctx.clients[sup].weight_update(
            batch, self.weights[sup], loss_cts, scale
        )
        others = [c.index for c in ctx.clients if c.index != sup]
        replies = collect_replies(ctx.bus, sup, others)
        ctx.bus.round()
        self.weights = [
            own_updated if client.index == sup else list(replies[client.index])
            for client in ctx.clients
        ]

    def _refresh_weights(self) -> None:
        """Share round-trip keeping exponents at -2F and stripping q-wraps."""
        ctx = self.ctx
        flat = [w for block in self.weights for w in block]
        shares = ctx.to_shares(flat)
        refreshed = [
            ctx.to_cipher(s).decrease_exponent_to(-2 * ctx.encoder.frac_bits)
            for s in shares
        ]
        index = 0
        for block in self.weights:
            for j in range(len(block)):
                block[j] = refreshed[index]
                index += 1

    # ------------------------------------------------------------------

    def predict_proba(self, rows: np.ndarray) -> np.ndarray:
        """Joint prediction over caller-held global rows."""
        from repro.core.prediction import global_rows_to_party_slices

        return self.predict_proba_slices(
            global_rows_to_party_slices(self.ctx, rows)
        )

    def predict_proba_slices(self, party_slices: list[np.ndarray]) -> np.ndarray:
        """Joint prediction from per-party feature blocks: encrypted
        partial sums -> secure sigmoid (federation-native input)."""
        if self.weights is None:
            raise RuntimeError("fit() must be called before predict()")
        ctx, fx = self.ctx, self.ctx.fx
        # Validates sample-count agreement and per-party column widths.
        from repro.core.prediction import _slices_per_row

        rows = _slices_per_row(ctx, party_slices)
        xi_cts = []
        for slices in rows:
            total = None
            for client, local, block_w in zip(ctx.clients, slices, self.weights):
                coefficients = [
                    ctx.encoder.encode(float(v)).encoding for v in local
                ]
                partial = encrypted_dot_product(coefficients, block_w)
                total = partial if total is None else total + partial
            xi_cts.append(total)
        z_shares = ctx.to_shares(xi_cts)
        probs = []
        for z in z_shares:
            sigma = fx.div(fx.share(1.0), fx.share(1.0) + fx.exp(-z))
            probs.append(ctx.open_value(sigma, tag="lr-prediction"))
        return np.asarray(probs)

    def predict(self, rows: np.ndarray) -> np.ndarray:
        return (self.predict_proba(rows) >= 0.5).astype(np.int64)

    def predict_slices(self, party_slices: list[np.ndarray]) -> np.ndarray:
        return (self.predict_proba_slices(party_slices) >= 0.5).astype(np.int64)


class PivotLogisticRegression(LogisticTrainer):
    """Deprecated flat-API name for :class:`LogisticTrainer`."""

    def __init__(self, context, learning_rate=0.5, n_epochs=3, batch_size=16):
        warnings.warn(
            "PivotLogisticRegression is deprecated; use repro.federation."
            "PivotLogisticClassifier (or LogisticTrainer directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(context, learning_rate, n_epochs, batch_size)
