"""Party-scoped federation API: the primary way to use this library.

Pivot's deployment model (§3.1) is m organisations, each owning a disjoint
block of feature columns for the same samples; exactly one (the *super
client*) additionally owns the labels.  This package mirrors that model in
the API instead of hiding it behind a context object that holds everyone's
data:

* :class:`~repro.federation.party.Party` — one organisation: her feature
  columns (behind a :class:`~repro.federation.locality.LocalView` read
  guard), her partial threshold-Paillier secret key, and her
  :class:`~repro.federation.party.PartyEndpoint` on the message bus.  The
  super client's party additionally owns the labels.
* :class:`~repro.federation.federation.Federation` — assembles the
  parties, runs threshold key generation and MPC setup, and owns the
  shared runtime (the :class:`~repro.core.context.PivotContext`).
  ``transport="asyncio"`` routes every protocol payload over real local
  sockets; :class:`~repro.federation.deployment.DeployedFederation`
  additionally launches each non-super party in her own worker process
  (columns and key share physically local), with bit-identical results.
* sklearn-style estimators (:mod:`repro.federation.estimators`):
  :class:`PivotClassifier`, :class:`PivotRegressor`,
  :class:`PivotForestClassifier`, :class:`PivotGBDTClassifier`,
  :class:`PivotGBDTRegressor`, :class:`PivotLogisticClassifier` — each with
  ``fit(parties)`` / ``predict(party_slices)`` / ``score(...)``, a
  ``protocol=`` switch (``"basic"`` / ``"enhanced"``) and uniform ``dp=`` /
  ``malicious=`` hooks, dispatching to the existing trainer / ensemble /
  prediction internals.

Quick start::

    from repro.federation import Federation, Party, PivotClassifier

    parties = [Party(X0, labels=y), Party(X1), Party(X2)]
    with Federation(parties) as fed:
        clf = PivotClassifier(protocol="basic", max_depth=3).fit(fed)
        predictions = clf.predict([X0_test, X1_test, X2_test])

The locality guarantee: inside a Federation every raw feature/label read
must execute in the owning party's scope (``strict_locality=True`` by
default for federations); a cross-party read raises
:class:`~repro.federation.locality.LocalityError`.  The legacy flat API
(``PivotContext`` + ``PivotDecisionTree`` + free prediction functions)
remains available as deprecation shims that forward here.

Submodules import lazily (PEP 562) because :mod:`repro.core` imports
:mod:`repro.federation.locality` while the estimators import
:mod:`repro.core` — eager imports would cycle.
"""

from typing import Any

from repro.federation.locality import (
    LocalityError,
    LocalView,
    as_party,
    current_party,
)

__all__ = [
    "DeployedFederation",
    "Federation",
    "LocalityError",
    "LocalView",
    "Party",
    "PartyEndpoint",
    "PartyService",
    "PivotClassifier",
    "PivotForestClassifier",
    "PivotGBDTClassifier",
    "PivotGBDTRegressor",
    "PivotLogisticClassifier",
    "PivotRegressor",
    "as_party",
    "current_party",
]

_LAZY = {
    "Party": "repro.federation.party",
    "PartyEndpoint": "repro.federation.party",
    "PartyService": "repro.federation.party",
    "Federation": "repro.federation.federation",
    "DeployedFederation": "repro.federation.deployment",
    "PivotClassifier": "repro.federation.estimators",
    "PivotRegressor": "repro.federation.estimators",
    "PivotForestClassifier": "repro.federation.estimators",
    "PivotGBDTClassifier": "repro.federation.estimators",
    "PivotGBDTRegressor": "repro.federation.estimators",
    "PivotLogisticClassifier": "repro.federation.estimators",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
