"""Party-locality enforcement: who may read which raw arrays (paper §3.1).

Pivot's security model says each client u_i sees exactly (a) her own
feature columns, (b) the protocol messages addressed to her, and (c) the
jointly revealed outputs.  The simulation runs every party in one process,
so nothing *physically* stops cross-party array reads — this module makes
them *fail loudly* instead:

* :func:`as_party` marks a block of code as "executing at party i" (the
  simulation's stand-in for process separation).  Every sanctioned local
  computation in the core protocols — indicator vectors, label encoding,
  logistic partial sums, per-sample prediction slices — runs inside the
  owning party's scope.
* :class:`LocalView` wraps one party's backing array (features or labels).
  When built with ``strict=True`` every data access checks that the
  current scope belongs to the owner and raises :class:`LocalityError`
  otherwise.  Shape/dtype metadata stays readable (feature *counts* are
  public protocol parameters; values are not).

``PivotConfig(strict_locality=True)`` (or the ``PIVOT_STRICT_LOCALITY``
environment variable, which the CI locality leg sets for the whole test
suite) turns the checks on; the default leaves legacy code paths working
unchanged during migration.  The enforcement is cooperative — a scope is a
claim that the enclosed computation belongs to that party — but it is not
cosmetic: the locality tests prove that *no* core training/prediction path
reads another party's columns outside the owner's scope, and that an
unscoped cross-party read raises.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

__all__ = [
    "LocalityError",
    "LocalView",
    "as_party",
    "current_party",
    "strict_locality_default",
]


class LocalityError(RuntimeError):
    """A raw cross-party array read that did not go through the bus."""


class _Scope(threading.local):
    def __init__(self) -> None:
        self.stack: list[int] = []


_SCOPE = _Scope()


def current_party() -> int | None:
    """The party whose local computation is currently executing, if any."""
    return _SCOPE.stack[-1] if _SCOPE.stack else None


@contextmanager
def as_party(index: int) -> Iterator[None]:
    """Execute a block as party ``index`` (innermost scope wins).

    Nesting the same party is a no-op; nesting a *different* party is
    allowed because protocol steps legitimately interleave local
    computations of several parties — each :class:`LocalView` access checks
    the innermost scope only.
    """
    if index < 0:
        raise ValueError(f"party index must be non-negative, got {index}")
    _SCOPE.stack.append(index)
    try:
        yield
    finally:
        _SCOPE.stack.pop()


def strict_locality_default() -> bool | None:
    """Default for ``PivotConfig.strict_locality`` (env-overridable).

    Tri-state: ``True`` when the ``PIVOT_STRICT_LOCALITY`` environment
    variable is set (the CI locality leg runs the whole suite that way, so
    any regression that reads another party's columns outside the owner's
    scope fails the build), otherwise ``None`` — *unset*.  Unset resolves
    to enforcing for :class:`~repro.federation.federation.Federation`
    deployments and to the legacy unguarded behaviour for bare
    ``PivotContext`` construction; only an explicit ``False`` turns
    enforcement off for a federation.
    """
    if os.environ.get("PIVOT_STRICT_LOCALITY", "").lower() in ("1", "true", "yes"):
        return True
    return None


class LocalView:
    """Read guard over one party's backing array (features or labels).

    The view exposes shape metadata freely but gates every *data* access
    (``read``, ``__getitem__``, ``__array__``) behind the owner's party
    scope when ``strict`` is set.  The backing array is never copied; the
    guard is an API boundary, not an isolation mechanism — the
    :class:`~repro.data.partition.VerticalPartition` keeps the raw arrays
    for out-of-protocol tooling (leakage attacks, plaintext baselines).
    """

    __slots__ = ("_array", "owner", "name", "strict")

    def __init__(
        self,
        array: np.ndarray,
        owner: int,
        *,
        name: str = "features",
        strict: bool = False,
    ) -> None:
        self._array = np.asarray(array)
        self.owner = owner
        self.name = name
        self.strict = strict

    # -- metadata (public protocol parameters) -----------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape

    @property
    def ndim(self) -> int:
        return self._array.ndim

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    def __len__(self) -> int:
        return len(self._array)

    def __repr__(self) -> str:
        mode = "strict" if self.strict else "open"
        return (
            f"LocalView({self.name} of party {self.owner}, "
            f"shape={self.shape}, {mode})"
        )

    # -- guarded data access ----------------------------------------------

    def _check(self) -> None:
        if not self.strict:
            return
        scope = current_party()
        if scope != self.owner:
            where = "outside any party scope" if scope is None else f"at party {scope}"
            raise LocalityError(
                f"cross-party read of party {self.owner}'s {self.name} "
                f"{where}: raw columns only travel as protocol messages "
                f"on the bus (wrap the owner's local computation in "
                f"as_party({self.owner}))"
            )

    def read(self) -> np.ndarray:
        """The backing array; raises unless executing at the owner."""
        self._check()
        return self._array

    def __getitem__(self, key: Any) -> Any:
        self._check()
        return self._array[key]

    def __array__(
        self, dtype: Any = None, copy: bool | None = None
    ) -> np.ndarray:
        self._check()
        if copy is False:
            # An explicit no-copy request aliases the backing store — the
            # same contract as read(), valid only inside the owner's scope.
            if dtype is not None and np.dtype(dtype) != self._array.dtype:
                raise ValueError(
                    "cannot honor copy=False: dtype conversion requires a copy"
                )
            return self._array
        # Default to copying so np.array/np.asarray callers cannot mutate
        # the party's stored columns through the returned array.
        return np.array(self._array, dtype=dtype, copy=True)
