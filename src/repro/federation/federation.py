"""The Federation orchestrator: assemble parties, run the joint setup.

A :class:`Federation` is the initialization stage of the protocol (§3.4)
with the party boundary made explicit: it takes the m
:class:`~repro.federation.party.Party` objects (exactly one holding
labels — the super client), builds the
:class:`~repro.data.partition.VerticalPartition`, runs threshold-Paillier
key generation and MPC setup through the existing
:class:`~repro.core.context.PivotContext` runtime, and binds each party to
her runtime identity: index, global column ids, partial secret key, and
bus endpoint.

Locality is enforced by default (``strict_locality=True`` unless an
explicit :class:`~repro.core.config.PivotConfig` says otherwise): raw
feature/label reads outside the owner's scope raise
:class:`~repro.federation.locality.LocalityError`.

Estimators (:mod:`repro.federation.estimators`) either receive a prepared
federation (``fit(fed)``) — sharing its keys across estimators — or a bare
party list (``fit(parties)``), in which case they assemble a federation
themselves.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Any

import numpy as np

from repro.core.config import PivotConfig
from repro.core.context import PivotContext
from repro.data.partition import VerticalPartition, vertical_partition
from repro.federation.party import Party, PartyEndpoint

__all__ = ["Federation"]


def _resolve_config(
    config: PivotConfig | None, strict_locality: bool | None
) -> PivotConfig:
    """The federation enforces the party boundary unless explicitly told
    not to: an *unset* ``strict_locality`` (None — the PivotConfig default
    when the PIVOT_STRICT_LOCALITY env var is absent) resolves to True
    here, so passing a custom config does not silently drop enforcement.
    """
    config = config or PivotConfig()
    if strict_locality is not None:
        return replace(config, strict_locality=strict_locality)
    if config.strict_locality is None:
        return replace(config, strict_locality=True)
    return config


class Federation:
    """m parties, jointly keyed and wired, ready to train estimators.

    ``transport`` picks the message transport for the whole run:
    ``"inmemory"`` (the default) routes serialized payloads through
    per-receiver queues in this process; ``"asyncio"`` moves the same
    bytes over real local TCP sockets
    (:class:`~repro.network.transport.AsyncioTransport`); a prepared
    :class:`~repro.network.transport.Transport` instance passes through.
    Protocol behaviour, measured bytes, and round counts are identical
    across transports — only the physical path of the bytes changes.
    """

    def __init__(
        self,
        parties: list[Party],
        *,
        task: str = "classification",
        config: PivotConfig | None = None,
        strict_locality: bool | None = None,
        transport: Any = None,
    ) -> None:
        super_client = self._validate_parties(parties)
        partition = self._partition_of(parties, task, super_client)
        self._assemble(parties, partition, config, strict_locality, transport)

    # -- shared validation / assembly ---------------------------------------

    @staticmethod
    def _validate_parties(parties: list[Party]) -> int:
        """The federation invariants, shared by every constructor.

        Returns the super client's index.  ``from_partition`` used to
        bypass these checks via ``cls.__new__``, so a 1-party or
        label-less partition could build a "federation" violating the
        exactly-one-super-client invariant.
        """
        if len(parties) < 2:
            raise ValueError("a federation needs at least 2 parties")
        for party in parties:
            if getattr(party, "_columns_remote", False):
                raise ValueError(
                    f"{party!r} shipped her columns to a worker process in a "
                    "previous DeployedFederation (the local copy is poisoned); "
                    "build fresh Party objects from the source data"
                )
        supers = [i for i, p in enumerate(parties) if p.holds_labels]
        if len(supers) != 1:
            raise ValueError(
                f"exactly one party must hold the labels (the super client); "
                f"got {len(supers)}"
            )
        counts = {p.n_samples for p in parties}
        if len(counts) != 1:
            raise ValueError("parties disagree on the sample count")
        return supers[0]

    @staticmethod
    def _partition_of(
        parties: list[Party], task: str, super_client: int
    ) -> VerticalPartition:
        """Build the distributed dataset view from validated parties."""
        # Global column ids: contiguous blocks in party order.
        columns, start = [], 0
        for party in parties:
            columns.append(tuple(range(start, start + party.n_features)))
            start += party.n_features
        return VerticalPartition(
            columns_per_client=tuple(columns),
            local_features=tuple(p._raw_features for p in parties),
            # pivotlint: disable=PL001 -- assembly: re-wrapping the super
            # client's own label array into the partition; the guarded views
            # over this data are constructed from it one step later.
            labels=np.asarray(parties[super_client]._raw_labels),
            super_client=super_client,
            task=task,
        )

    def _assemble(
        self,
        parties: list[Party],
        partition: VerticalPartition,
        config: PivotConfig | None,
        strict_locality: bool | None,
        transport: Any,
        remote_clients: dict[int, object] | None = None,
        local_parties: tuple[int, ...] | None = None,
    ) -> None:
        """Joint setup (§3.4): config, keys, MPC engine, bus, binding.

        ``local_parties`` restricts which parties' inboxes (and, with
        distributed keygen, key shares) live in this process — the
        standalone-runtime orchestrator passes only the super client;
        everything else defaults to all m parties.
        """
        self.config = _resolve_config(config, strict_locality)
        self.parties = list(parties)
        #: Shared runtime: keys, MPC engine, bus, accounting (§3.4 setup).
        self.context = PivotContext(
            partition,
            self.config,
            transport=transport,
            remote_clients=remote_clients,
            local_parties=local_parties,
        )
        self._bind_parties()

    @classmethod
    def from_partition(
        cls,
        partition: VerticalPartition,
        config: PivotConfig | None = None,
        strict_locality: bool | None = None,
        transport: Any = None,
    ) -> "Federation":
        """Bridge from the legacy partition object (simulation datasets).

        Runs the same invariant checks as the party-list constructor: a
        partition with fewer than 2 clients, without labels, or with
        ragged sample counts is rejected, not silently federated.
        """
        parties = []
        for i, block in enumerate(partition.local_features):
            labels = partition.labels if i == partition.super_client else None
            parties.append(Party(block, labels=labels))
        fed = cls.__new__(cls)
        fed._validate_parties(parties)
        fed._assemble(parties, partition, config, strict_locality, transport)
        return fed

    @classmethod
    def from_global(
        cls,
        X: np.ndarray,
        y: np.ndarray,
        n_parties: int,
        *,
        task: str = "classification",
        super_client: int = 0,
        config: PivotConfig | None = None,
        strict_locality: bool | None = None,
        transport: Any = None,
    ) -> "Federation":
        """Split a caller-held global matrix evenly over ``n_parties``."""
        partition = vertical_partition(
            X, y, n_parties, task=task, super_client=super_client
        )
        return cls.from_partition(
            partition,
            config=config,
            strict_locality=strict_locality,
            transport=transport,
        )

    def _bind_parties(self) -> None:
        ctx = self.context
        for i, party in enumerate(self.parties):
            labels_view = ctx.labels if i == ctx.super_client else None
            party._bind(
                index=i,
                columns=ctx.partition.columns_per_client[i],
                features_view=ctx.clients[i].features,
                labels_view=labels_view,
                key_share=ctx.threshold.shares[i],
                endpoint=PartyEndpoint(ctx.bus, i),
            )

    # -- basic facts --------------------------------------------------------

    @property
    def n_parties(self) -> int:
        return len(self.parties)

    @property
    def task(self) -> str:
        return self.context.partition.task

    @property
    def super_client(self) -> int:
        return self.context.super_client

    @property
    def strict_locality(self) -> bool:
        return self.context.strict_locality

    @property
    def decrypt_mode(self) -> str:
        """How threshold decryptions recover plaintexts: ``"combine"``
        reconstructs from the m per-party share vectors the decrypt flow
        moves (forced once a deployment scrubs the dealer key);
        ``"simulate"`` shortcuts through the dealer's retained CRT key
        with bit-identical results, bytes, rounds, and Cd counts."""
        return self.context.threshold.decrypt_mode

    def slices(self, X: np.ndarray) -> list[np.ndarray]:
        """Split caller-held global rows into per-party column blocks.

        Simulation convenience for ``predict(party_slices)``: in a real
        deployment each party supplies her own block.
        """
        from repro.core.prediction import global_rows_to_party_slices

        return global_rows_to_party_slices(self.context, X)

    # -- estimator support ---------------------------------------------------

    def context_for(
        self,
        protocol: str | None = None,
        dp: Any = None,
        malicious: bool | None = None,
    ) -> PivotContext:
        """A context view with estimator-level switches applied.

        Key material, engine, bus and accounting are shared with
        :attr:`context`; only the config differs (the trainers read
        ``protocol`` / ``dp`` at fit time).  ``malicious`` requires the
        federation to have been built with authenticated MPC — MACs exist
        from preprocessing onward and cannot be retrofitted.
        """
        cfg = self.config
        overrides: dict[str, Any] = {}
        if protocol is not None and protocol != cfg.protocol:
            overrides["protocol"] = protocol
        if dp is not cfg.dp:
            overrides["dp"] = dp
        if malicious is not None and malicious != cfg.authenticated_mpc:
            if malicious and not self.context.engine.authenticated:
                raise ValueError(
                    "malicious=True needs authenticated MPC from setup: build "
                    "the Federation with PivotConfig(authenticated_mpc=True)"
                )
            overrides["authenticated_mpc"] = malicious
        if not overrides:
            return self.context
        view = copy.copy(self.context)
        view.config = replace(cfg, **overrides)  # validates (e.g. key size)
        return view

    # -- lifecycle / reporting ----------------------------------------------

    def assert_drained(self) -> None:
        """End-of-run invariant: every party consumed her whole inbox."""
        self.context.bus.assert_drained()

    def cost_snapshot(self) -> dict[str, object]:
        return self.context.cost_snapshot()

    def close(self) -> None:
        self.context.close()

    def __enter__(self) -> "Federation":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Federation(m={self.n_parties}, task={self.task!r}, "
            f"super_client={self.super_client}, "
            f"strict_locality={self.strict_locality})"
        )
