"""Per-party process deployment: the locality boundary made physical.

The paper evaluates Pivot with every client on her own machine in a LAN
(§8.1).  :class:`DeployedFederation` reproduces that topology on one host:
each non-super :class:`~repro.federation.party.Party` is launched in her
own **worker process** holding her raw feature columns (and, after
provisioning, her partial threshold-Paillier key share), while the super
client's process — the orchestrator — owns the labels and drives the
protocol.  The :class:`~repro.federation.locality.LocalView` /
``strict_locality`` guarantee that PR 3 enforced cooperatively becomes
physically true: a non-super party's raw columns exist **only** in her
worker process (the orchestrator's copies are replaced by NaN poison
arrays the moment the worker owns the data), so no orchestrator-side code
path can read them, scoped or not.

What runs where:

* **Worker process** (one per non-super party): stores the party's
  columns behind a strict ``LocalView``, computes her sanctioned local
  protocol steps *inside her own scope* — candidate splits (§3.4 setup),
  split-indicator vectors/matrices (§4.1/§5.2), per-sample feature slices
  (§5.2 residual rounds), the logistic trainer's per-epoch batch sums and
  gradient folds (§7.3), and **her half of every threshold decryption**:
  the c^{d_i} exponentiations with her provisioned key share run here, on
  the real protocol path (her
  :class:`~repro.federation.party.PartyService` answers each decrypt
  request through the worker's ``partial_decrypt`` op).
* **Orchestrator** (the super client's process): assembles the
  federation, runs key generation as the trusted dealer (§3.4; the
  simulation's centralized stand-in for distributed keygen), provisions
  each share to its owner and then **scrubs the dealer key material**
  (:meth:`~repro.crypto.threshold.ThresholdPaillier.scrub_dealer`): the
  withheld private key and the remote ``d_share`` values are dropped, the
  context's ``decrypt_mode`` is forced to ``"combine"``, and every
  plaintext is reconstructed only from the m share vectors the decrypt
  flow moves.  It still moves messages on the shared
  :class:`~repro.network.bus.MessageBus` and drives each remote party
  through her command channel, but it cannot decrypt alone — kill one
  worker and decryption fails (``RemoteOpError``) instead of falling back
  to a dealer key that no longer exists.

Protocol payloads flow on the federation's transport exactly as in the
single-process deployment — with ``transport="asyncio"`` (the default
here) they cross real local sockets — so measured bytes, rounds, op
counts, and the trained model are bit-identical to an in-memory run; the
parity test in ``tests/federation/test_deployment_parity.py`` (wired into
CI) asserts exactly that.  The worker command channel is deployment
control plane, not protocol traffic, and is therefore not accounted.

Usage::

    from repro.federation.deployment import DeployedFederation

    parties = [Party(X_bank, labels=y), Party(X_fintech)]
    with DeployedFederation(parties) as fed:      # spawns 1 worker process
        clf = PivotClassifier().fit(fed)
        preds = clf.predict([Xb_test, Xf_test])
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import replace
from typing import Any, NoReturn

import numpy as np

from repro.analysis import opcount
from repro.core.config import PivotConfig
from repro.core.context import PivotClient
from repro.federation.federation import Federation, _resolve_config
from repro.federation.locality import LocalView, as_party
from repro.federation.party import Party
from repro.tree.splits import candidate_splits

__all__ = [
    "DeployedFederation",
    "PartyProcess",
    "RemotePivotClient",
    "RemoteOpError",
    "deploy",
]


class RemoteOpError(RuntimeError):
    """A party-local operation failed (or its worker process died)."""


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _party_worker(
    conn: Any, index: int, features: np.ndarray, strict: bool
) -> None:
    """One party's process: her columns, her key share, her local compute.

    Runs a command loop over the process pipe.  Every feature read happens
    through this party's own strict :class:`LocalView` inside her
    ``as_party`` scope — in this process there is nobody else's scope to
    leak into, which is the point.  Ops that perform homomorphic work
    (``batch_sums``, ``weight_update``) return their Ce/Cd op-count delta
    alongside the result so the orchestrator's Table-2 tallies stay exact.
    """
    view = LocalView(features, index, name="features", strict=strict)
    # The sanctioned local-computation surface over this party's columns;
    # split_values stay empty (the logistic ops don't use them).
    local_client = PivotClient(index=index, features=view, split_values=[])
    key_share: Any = None
    split_values: list[list[float]] | None = None

    def compute(op: str, kw: dict) -> Any:
        nonlocal key_share, split_values
        if op == "info":
            return {
                "n_samples": view.shape[0],
                "n_features": view.shape[1],
            }
        if op == "candidate_splits":
            with as_party(index):
                split_values = [
                    candidate_splits(view.read()[:, j], kw["max_splits"])
                    for j in range(view.shape[1])
                ]
            return split_values
        if op == "indicator":
            if split_values is None:
                raise RuntimeError("candidate_splits must run first")
            threshold = split_values[kw["feature"]][kw["split"]]
            with as_party(index):
                column = view.read()[:, kw["feature"]]
            return (column <= threshold).astype(np.int64)
        if op == "indicator_matrix":
            if split_values is None:
                raise RuntimeError("candidate_splits must run first")
            feature = kw["feature"]
            with as_party(index):
                column = view.read()[:, feature]
            return np.column_stack(
                [
                    (column <= t).astype(np.int64)
                    for t in split_values[feature]
                ]
            )
        if op == "local_row":
            with as_party(index):
                return np.asarray(view.read()[kw["t"]], dtype=np.float64)
        if op == "provision":
            key_share = kw["key_share"]
            return None
        if op == "partial_decrypt":
            # This party's half of a real threshold decryption: the
            # c^{d_i} exponentiations run here, with the share only this
            # process holds, and only the share values travel back.
            if key_share is None:
                raise RuntimeError("no key share provisioned yet")
            return [
                p.value
                for p in key_share.partial_decrypt_batch(kw["ciphertexts"])
            ]
        if op == "batch_sums":
            # Logistic §7.3: per-sample encrypted partial sums over this
            # party's own columns (the op that used to force logistic
            # training back into a single process).
            with opcount.counting() as ops:
                result = local_client.batch_sums(kw["rows"], kw["weights"])
            return {"result": result, "ops": ops}
        if op == "weight_update":
            with opcount.counting() as ops:
                result = local_client.weight_update(
                    kw["rows"], kw["weights"], kw["loss_cts"], kw["scale"]
                )
            return {"result": result, "ops": ops}
        raise ValueError(f"unknown party op {op!r}")

    while True:
        try:
            op, kw = conn.recv()
        except (EOFError, OSError):
            break
        if op == "shutdown":
            conn.send(("ok", None))
            break
        try:
            conn.send(("ok", compute(op, kw)))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    conn.close()


# ---------------------------------------------------------------------------
# orchestrator side
# ---------------------------------------------------------------------------


class PartyProcess:
    """Orchestrator-side handle on one party's worker process.

    The command channel (a process pipe) is the deployment's control
    plane; the party's protocol outputs travel back over it, her raw
    columns and key share never do.
    """

    def __init__(
        self,
        index: int,
        features: np.ndarray,
        *,
        strict: bool = True,
        start_method: str = "spawn",
        timeout: float = 120.0,
    ) -> None:
        self.index = index
        self.timeout = timeout
        ctx = multiprocessing.get_context(start_method)
        self._conn, child = ctx.Pipe()
        self._proc: Any = ctx.Process(
            target=_party_worker,
            args=(child, index, np.ascontiguousarray(features), strict),
            name=f"pivot-party-{index}",
            daemon=True,
        )
        self._proc.start()
        child.close()

    def request(self, op: str, **kwargs: Any) -> Any:
        """Run one party-local operation in the worker; return its output."""
        if self._proc is None:
            raise RemoteOpError(f"party {self.index} worker already shut down")
        try:
            self._conn.send((op, kwargs))
        except (BrokenPipeError, OSError) as exc:
            raise RemoteOpError(
                f"party {self.index} worker is unreachable: {exc}"
            ) from exc
        deadline = time.monotonic() + self.timeout
        while not self._conn.poll(0.05):
            if not self._proc.is_alive():
                raise RemoteOpError(
                    f"party {self.index} worker died during {op!r}"
                )
            if time.monotonic() > deadline:
                raise RemoteOpError(
                    f"party {self.index} worker timed out on {op!r}"
                )
        try:
            status, value = self._conn.recv()
        except (EOFError, OSError) as exc:
            # poll() reports readable on pipe EOF too: the worker died
            # after accepting the request.
            raise RemoteOpError(
                f"party {self.index} worker died during {op!r}"
            ) from exc
        if status != "ok":
            raise RemoteOpError(
                f"party {self.index} failed {op!r}:\n{value}"
            )
        return value

    def close(self) -> None:
        if self._proc is None:
            return
        try:
            self.request("shutdown")
        except RemoteOpError:
            pass  # already gone; join/terminate below still runs
        self._proc.join(5.0)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(5.0)
        self._conn.close()
        self._proc = None


class RemotePivotClient:
    """Duck-type of :class:`~repro.core.context.PivotClient` whose feature
    reads execute in the owning party's process.

    Exposes the same sanctioned local-computation surface (``indicator``,
    ``indicator_matrix``, ``local_row``, plaintext ``split_values``); the
    raw column matrix is *not* reachable — :attr:`features` is a proxy
    whose data access raises, because this process holds no such array.
    """

    def __init__(
        self,
        index: int,
        worker: PartyProcess,
        split_values: list[list[float]],
        n_samples: int,
        n_features: int,
    ) -> None:
        self.index = index
        self.worker = worker
        self.split_values = split_values
        self.features = _RemoteColumns(index, (n_samples, n_features))

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    def local(self) -> Any:
        return as_party(self.index)

    def n_splits(self, feature: int) -> int:
        return len(self.split_values[feature])

    def indicator(self, feature: int, split: int) -> np.ndarray:
        return self.worker.request("indicator", feature=feature, split=split)

    def indicator_matrix(self, feature: int) -> np.ndarray:
        return self.worker.request("indicator_matrix", feature=feature)

    def local_row(self, t: int) -> np.ndarray:
        return self.worker.request("local_row", t=t)

    def decryption_shares(self, ciphertexts: list) -> list[int]:
        """This party's half of a threshold decryption, computed in her
        worker with the key share only that process holds.  Wired into the
        context's :class:`~repro.federation.party.PartyService` so the
        decrypt flow's share vectors are real remote computations."""
        return self.worker.request("partial_decrypt", ciphertexts=ciphertexts)

    def _counted(self, op: str, **kwargs: Any) -> Any:
        """Run a homomorphic worker op and absorb its op-count delta, so
        the orchestrator's Ce/Cd tallies match the in-memory run."""
        reply = self.worker.request(op, **kwargs)
        ops = reply["ops"]
        opcount.GLOBAL.ce += ops["ce"]
        opcount.GLOBAL.cd += ops["cd"]
        opcount.GLOBAL.cs += ops["cs"]
        opcount.GLOBAL.cc += ops["cc"]
        return reply["result"]

    def batch_sums(self, rows: list[int], weights: list) -> list:
        return self._counted("batch_sums", rows=list(rows), weights=weights)

    def weight_update(
        self, rows: list[int], weights: list, loss_cts: list, scale: float
    ) -> list:
        return self._counted(
            "weight_update",
            rows=list(rows),
            weights=weights,
            loss_cts=loss_cts,
            scale=scale,
        )


class _RemoteColumns:
    """Shape metadata of a remote party's columns; data access raises."""

    __slots__ = ("owner", "shape")

    def __init__(self, owner: int, shape: tuple[int, int]) -> None:
        self.owner = owner
        self.shape = shape

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __len__(self) -> int:
        return self.shape[0]

    def _refuse(self) -> NoReturn:
        raise RemoteOpError(
            f"party {self.owner}'s raw columns live in her worker process; "
            f"this process holds no such array (only protocol-level outputs "
            f"travel back over the command channel)"
        )

    def read(self) -> np.ndarray:
        self._refuse()

    def __getitem__(self, key: Any) -> Any:
        self._refuse()

    def __array__(self, dtype: Any = None, copy: bool | None = None) -> np.ndarray:
        self._refuse()

    def __repr__(self) -> str:
        return f"RemoteColumns(party {self.owner}, shape={self.shape})"


class DeployedFederation(Federation):
    """A federation whose non-super parties run in their own processes.

    Same API and bit-identical behaviour as :class:`Federation`; the
    difference is physical.  The orchestrator (this process) is the super
    client's machine: it keeps her columns and the labels.  Every other
    party's columns are shipped to her worker process at launch and the
    orchestrator's reference is replaced by a NaN poison array, so any
    code path that would read them locally either fails loudly
    (:class:`RemotePivotClient` raises) or poisons the parity-checked
    output — the locality guarantee no longer depends on cooperation.
    """

    def __init__(
        self,
        parties: list[Party],
        *,
        task: str = "classification",
        config: PivotConfig | None = None,
        strict_locality: bool | None = None,
        transport: Any = "asyncio",
        start_method: str = "spawn",
    ) -> None:
        super_client = self._validate_parties(parties)
        resolved = _resolve_config(config, strict_locality)
        partition = self._partition_of(parties, task, super_client)
        self.workers: dict[int, PartyProcess] = {}
        remote_clients: dict[int, object] = {}
        masked: list[np.ndarray] = []
        try:
            for i, party in enumerate(parties):
                # pivotlint: disable=PL001 -- provisioning: handing party i's
                # own block to party i's worker process (then poisoning the
                # orchestrator copy below); nothing is computed on it here.
                block = partition.local_features[i]
                if i == partition.super_client:
                    masked.append(block)
                    continue
                worker = PartyProcess(
                    i,
                    block,
                    strict=bool(resolved.strict_locality),
                    start_method=start_method,
                )
                self.workers[i] = worker
                splits = worker.request(
                    "candidate_splits", max_splits=resolved.tree.max_splits
                )
                remote_clients[i] = RemotePivotClient(
                    i, worker, splits, block.shape[0], block.shape[1]
                )
                # The worker owns the columns now; poison the
                # orchestrator's copy so a cross-process read cannot
                # silently succeed.  The flag makes re-federating this
                # Party object fail validation instead of training on the
                # poison.
                poison = np.full_like(block, np.nan)
                masked.append(poison)
                party._raw_features = poison
                party._columns_remote = True
            partition = replace(partition, local_features=tuple(masked))
            self._assemble(
                parties,
                partition,
                resolved,
                None,
                transport,
                remote_clients=remote_clients,
            )
            # Provision each remote party's partial key share to its owner
            # and drop the orchestrator-side Party handle's copy.
            for i, worker in self.workers.items():
                # pivotlint: disable=PL002 -- sanctioned key distribution:
                # the dealer hands share i to its owner over the private
                # process pipe (not the party-visible bus), then scrubs
                # every orchestrator-side copy below.
                worker.request(
                    "provision", key_share=self.context.threshold.shares[i]
                )
                parties[i].key_share = None
            # The workers own their shares now: scrub the dealer.  The
            # withheld private key and the remote parties' d_share values
            # are dropped from this process (only the super client's own
            # share stays — she *is* this process), and decrypt_mode is
            # forced to "combine": every plaintext from here on is
            # reconstructed from the m share vectors the decrypt flow
            # moves, m−1 of which only the workers can produce.  The
            # orchestrator provably cannot decrypt alone.
            self.context.threshold.scrub_dealer(
                keep_shares={partition.super_client}
            )
        except BaseException:
            self._shutdown_workers()
            raise

    @classmethod
    def from_partition(
        cls,
        partition: Any,
        config: PivotConfig | None = None,
        strict_locality: bool | None = None,
        transport: Any = "asyncio",
    ) -> "DeployedFederation":
        """Deploy from a legacy partition object.

        Unlike the base class this cannot share the ``cls.__new__``
        assembly path — worker processes must be launched — so the
        partition is unpacked into parties and routed through the real
        constructor (``from_global`` inherits and lands here too).
        """
        # from_global passes transport=None through; the deployed default
        # stays the socket transport.
        transport = "asyncio" if transport is None else transport
        parties = [
            Party(
                block,
                labels=(
                    partition.labels
                    if i == partition.super_client
                    else None
                ),
            )
            for i, block in enumerate(partition.local_features)
        ]
        return cls(
            parties,
            task=partition.task,
            config=config,
            strict_locality=strict_locality,
            transport=transport,
        )

    def _shutdown_workers(self) -> None:
        for worker in self.workers.values():
            worker.close()
        self.workers.clear()

    def close(self) -> None:
        self._shutdown_workers()
        super().close()


def deploy(parties: list[Party], **kwargs: Any) -> DeployedFederation:
    """Launch a per-party process deployment (sugar for the class)."""
    return DeployedFederation(parties, **kwargs)
