"""sklearn-style estimators over the enforced party boundary.

One facade per model family, each dispatching to the existing trainer /
ensemble / prediction internals:

=============================  ============================================
estimator                      implementation
=============================  ============================================
:class:`PivotClassifier`       :class:`~repro.core.trainer.TreeTrainer` /
                               :class:`~repro.core.malicious.MaliciousPivotDecisionTree`
:class:`PivotRegressor`        :class:`~repro.core.trainer.TreeTrainer`
:class:`PivotForestClassifier` :class:`~repro.core.ensemble.ForestTrainer`
:class:`PivotGBDTClassifier`   :class:`~repro.core.ensemble.GBDTTrainer`
:class:`PivotGBDTRegressor`    :class:`~repro.core.ensemble.GBDTTrainer`
:class:`PivotLogisticClassifier` :class:`~repro.core.logistic.LogisticTrainer`
=============================  ============================================

Uniform surface:

* ``fit(federation_or_parties)`` — a prepared
  :class:`~repro.federation.federation.Federation` (estimators share its
  keys) or a bare list of :class:`~repro.federation.party.Party` objects
  (the estimator assembles its own federation from its constructor
  arguments and owns it).
* ``predict(party_slices)`` / ``predict_proba`` — per-party feature
  blocks, one ``n × d_i`` array per party (a global ``n × d`` matrix is
  accepted as a single-process convenience and split by the federation's
  column assignment).
* ``score(party_slices, y)`` — accuracy for classifiers, R² for
  regressors.
* ``protocol=`` — ``"basic"`` (plaintext model released) or
  ``"enhanced"`` (§5.2: thresholds and leaf labels stay secret-shared;
  ensembles aggregate at the share level).
* ``dp=`` — a :class:`~repro.core.config.DPConfig` enabling the §9.2
  mechanisms inside MPC (tree-based estimators).
* ``malicious=`` — §9.1 zero-knowledge-audited training (basic protocol;
  requires a federation built with ``authenticated_mpc=True`` or a bare
  party list, for which the estimator configures it).

After every ``fit``/``predict`` the inboxes are asserted drained — payload
sends are consumed by their receivers, not accumulated.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.config import DPConfig, PivotConfig
from repro.core.ensemble import ForestTrainer, GBDTTrainer
from repro.core.logistic import LogisticTrainer
from repro.core.malicious import MaliciousPivotDecisionTree
from repro.core.prediction import run_predict_batch_slices
from repro.core.trainer import TreeTrainer
from repro.federation.federation import Federation
from repro.federation.party import Party
from repro.tree.cart import TreeParams

__all__ = [
    "PivotClassifier",
    "PivotForestClassifier",
    "PivotGBDTClassifier",
    "PivotGBDTRegressor",
    "PivotLogisticClassifier",
    "PivotRegressor",
]

#: Sentinel distinguishing "dp not specified" (inherit the federation's)
#: from an explicit ``dp=None`` (train without DP even on a DP federation).
_UNSET = object()


class _FederatedEstimator:
    """Shared fit/predict plumbing for all facade estimators."""

    _task = "classification"
    _supports_dp = True
    _supports_malicious = True

    def __init__(
        self,
        *,
        protocol: str | None = None,
        dp: Any = _UNSET,
        malicious: bool = False,
        keysize: int | None = None,
        tree: TreeParams | None = None,
        max_depth: int | None = None,
        max_splits: int | None = None,
        seed: int | None = None,
        config: PivotConfig | None = None,
    ) -> None:
        if protocol not in (None, "basic", "enhanced"):
            raise ValueError(f"unknown protocol {protocol!r}")
        if malicious and not self._supports_malicious:
            raise NotImplementedError(
                f"{type(self).__name__} has no malicious-model variant "
                "(§9.1 covers the tree protocols with plaintext-committed labels)"
            )
        if dp is not _UNSET and dp is not None and not self._supports_dp:
            raise ValueError(
                f"{type(self).__name__} does not take dp=: the §9.2 "
                "mechanisms are tree-specific"
            )
        if malicious and protocol == "enhanced":
            raise ValueError(
                "the malicious model (§9.1) hardens the basic protocol; "
                "combine malicious=True with protocol='basic'"
            )
        #: None = inherit the federation's protocol (basic when the
        #: estimator assembles its own federation).  Likewise _UNSET dp
        #: inherits; an explicit value overrides.
        self.protocol = protocol
        self.dp = dp
        self.malicious = malicious
        self.keysize = keysize
        self.seed = seed
        if tree is None and (max_depth is not None or max_splits is not None):
            defaults = TreeParams()
            tree = TreeParams(
                max_depth=max_depth if max_depth is not None else defaults.max_depth,
                max_splits=(
                    max_splits if max_splits is not None else defaults.max_splits
                ),
            )
        self.tree = tree
        self.config = config
        # Set by fit():
        self.federation_: Any = None
        self.ctx_: Any = None
        self.protocol_: str | None = None  # resolved at fit time
        self.dp_: DPConfig | None = None
        self._owns_federation = False

    # -- federation resolution ----------------------------------------------

    def _build_config(self) -> PivotConfig:
        base = self.config or PivotConfig()
        kwargs: dict = {
            "protocol": self.protocol or base.protocol,
            "dp": base.dp if self.dp is _UNSET else self.dp,
            "authenticated_mpc": self.malicious or base.authenticated_mpc,
        }
        if self.keysize is not None:
            kwargs["keysize"] = self.keysize
        if self.tree is not None:
            kwargs["tree"] = self.tree
        if self.seed is not None:
            kwargs["seed"] = self.seed
        from dataclasses import replace

        return replace(base, **kwargs)

    def _resolve(self, federation: Any) -> None:
        if isinstance(federation, Federation):
            # Setup-level parameters are fixed at key/candidate-split
            # generation and cannot be retrofitted onto a prepared
            # federation — refuse rather than silently ignore them.
            fixed = {
                "keysize": self.keysize,
                "tree": self.tree,
                "seed": self.seed,
                "config": self.config,
            }
            set_anyway = [name for name, value in fixed.items() if value is not None]
            if set_anyway:
                raise ValueError(
                    f"{', '.join(set_anyway)} cannot be applied to a prepared "
                    "Federation (they are fixed at setup); either build the "
                    "Federation with them or pass a bare party list to fit()"
                )
            fed = federation
            self._owns_federation = False
        elif isinstance(federation, (list, tuple)) and all(
            isinstance(p, Party) for p in federation
        ):
            fed = Federation(
                list(federation), task=self._task, config=self._build_config()
            )
            self._owns_federation = True
        else:
            raise TypeError(
                "fit() takes a Federation or a list of Party objects, got "
                f"{type(federation).__name__}"
            )
        if fed.task != self._task:
            raise ValueError(
                f"{type(self).__name__} needs a {self._task!r} federation, "
                f"got {fed.task!r}"
            )
        # Unspecified protocol/dp inherit the federation's configuration;
        # only explicit arguments override it.
        self.protocol_ = self.protocol or fed.config.protocol
        self.dp_ = fed.config.dp if self.dp is _UNSET else self.dp
        if self.malicious and self.protocol_ != "basic":
            raise ValueError(
                "the malicious model (§9.1) hardens the basic protocol; "
                f"this federation runs {self.protocol_!r}"
            )
        self.federation_ = fed
        self.ctx_ = fed.context_for(
            protocol=self.protocol_, dp=self.dp_, malicious=self.malicious
        )

    def _require_fitted(self) -> None:
        if self.ctx_ is None:
            raise RuntimeError("fit() must be called before predict()/score()")

    def _as_party_slices(self, X: Any) -> list[np.ndarray]:
        """Accept per-party blocks, or split a caller-held global matrix."""
        self._require_fitted()
        if isinstance(X, (list, tuple)):
            return [np.atleast_2d(np.asarray(b, dtype=np.float64)) for b in X]
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return self.federation_.slices(X)

    # -- sklearn-style surface ------------------------------------------------

    def fit(self, federation: Any) -> "_FederatedEstimator":
        """Train over a Federation (or assemble one from a party list)."""
        self._resolve(federation)
        self._fit(self.ctx_)
        self.federation_.assert_drained()
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        out = self._predict(self._as_party_slices(X))
        self.federation_.assert_drained()
        return out

    def score(self, X: Any, y: Any) -> float:
        """Accuracy (classifiers) or R² (regressors)."""
        y = np.asarray(y)
        predictions = self.predict(X)
        if self._task == "classification":
            return float(np.mean(predictions == y))
        residual = float(np.sum((y - predictions) ** 2))
        total = float(np.sum((y - y.mean()) ** 2)) or 1.0
        return 1.0 - residual / total

    def close(self) -> None:
        """Release the federation's workers if this estimator owns it."""
        if self._owns_federation and self.federation_ is not None:
            self.federation_.close()

    def __enter__(self) -> "_FederatedEstimator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- subclass hooks -------------------------------------------------------

    def _fit(self, ctx: Any) -> None:
        raise NotImplementedError

    def _predict(self, party_slices: list[np.ndarray]) -> np.ndarray:
        raise NotImplementedError


class _TreeEstimator(_FederatedEstimator):
    """Single decision tree (Algorithm 3), basic or enhanced protocol."""

    def _fit(self, ctx: Any) -> None:
        trainer: Any = (
            MaliciousPivotDecisionTree(ctx) if self.malicious else TreeTrainer(ctx)
        )
        self.model_ = trainer.fit()
        if self._task == "classification":
            self.n_classes_ = trainer.provider.n_classes

    def _predict(self, party_slices: list[np.ndarray]) -> np.ndarray:
        return run_predict_batch_slices(
            self.model_, self.ctx_, party_slices, protocol=self.protocol_
        )


class PivotClassifier(_TreeEstimator):
    """Privacy-preserving CART classification over a vertical federation."""

    _task = "classification"


class PivotRegressor(_TreeEstimator):
    """Privacy-preserving CART regression over a vertical federation."""

    _task = "regression"
    _supports_malicious = True


class PivotForestClassifier(_FederatedEstimator):
    """Pivot-RF (§7.1): bagged trees, votes aggregated privately.

    With ``protocol="enhanced"`` the per-tree predictions stay secretly
    shared; votes are computed with secure equality tests and only the
    winning class index is opened.
    """

    _task = "classification"

    def __init__(
        self,
        n_trees: int = 4,
        *,
        sample_fraction: float = 0.8,
        sample_seed: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.n_trees = n_trees
        self.sample_fraction = sample_fraction
        self.sample_seed = sample_seed

    def _fit(self, ctx: Any) -> None:
        factory = MaliciousPivotDecisionTree if self.malicious else TreeTrainer
        self.trainer_ = ForestTrainer(
            ctx,
            n_trees=self.n_trees,
            sample_fraction=self.sample_fraction,
            seed=self.sample_seed if self.sample_seed is not None else self.seed,
            trainer_factory=factory,
        ).fit()
        self.models_ = self.trainer_.models
        self.n_classes_ = self.trainer_.n_classes

    def _predict(self, party_slices: list[np.ndarray]) -> np.ndarray:
        return self.trainer_.predict_slices(party_slices)


class _GBDTEstimator(_FederatedEstimator):
    # §9.1's proofs commit plaintext label vectors; boosting rounds >= 2
    # train on encrypted residuals nobody can commit to.
    _supports_malicious = False

    def __init__(
        self,
        n_rounds: int = 4,
        *,
        learning_rate: float = 0.3,
        use_softmax: bool = True,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.use_softmax = use_softmax

    def _fit(self, ctx: Any) -> None:
        self.trainer_ = GBDTTrainer(
            ctx,
            n_rounds=self.n_rounds,
            learning_rate=self.learning_rate,
            use_softmax=self.use_softmax,
        ).fit()
        self.models_ = self.trainer_.models or self.trainer_.class_models

    def _predict(self, party_slices: list[np.ndarray]) -> np.ndarray:
        return self.trainer_.predict_slices(party_slices)


class PivotGBDTClassifier(_GBDTEstimator):
    """Pivot-GBDT classification (§7.2): one-vs-rest boosted residuals."""

    _task = "classification"


class PivotGBDTRegressor(_GBDTEstimator):
    """Pivot-GBDT regression (§7.2): encrypted-residual boosting."""

    _task = "regression"


class PivotLogisticClassifier(_FederatedEstimator):
    """Vertical logistic regression (§7.3).

    The weights, losses and gradients are hidden end to end regardless of
    protocol — there is no released model for basic/enhanced to differ on —
    so both protocol values run the same computation.
    """

    _task = "classification"
    _supports_dp = False
    _supports_malicious = False

    def __init__(
        self,
        *,
        learning_rate: float = 0.5,
        n_epochs: int = 3,
        batch_size: int = 16,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size

    def _fit(self, ctx: Any) -> None:
        self.trainer_ = LogisticTrainer(
            ctx,
            learning_rate=self.learning_rate,
            n_epochs=self.n_epochs,
            batch_size=self.batch_size,
        ).fit()

    def _predict(self, party_slices: list[np.ndarray]) -> np.ndarray:
        return self.trainer_.predict_slices(party_slices)

    def predict_proba(self, X: Any) -> np.ndarray:
        self._require_fitted()
        out = self.trainer_.predict_proba_slices(self._as_party_slices(X))
        self.federation_.assert_drained()
        return out
