"""Standalone party runtime: one process per party, no orchestrator-scheduler.

This module is the deployment shape the paper actually measures (§8.1: "m
machines in a LAN, one client per machine"), in the one-service-per-node
style of production FL stacks: every party runs

    python -m repro.federation.runtime --config partyN.toml

as her own long-lived process.  Each process

* binds **only her own** listening port
  (:class:`~repro.network.transport.PeerTransport` — a full TCP mesh,
  lazily connected, start-order independent);
* takes part in **distributed Paillier keygen**
  (:mod:`repro.crypto.distkeygen`): her ``d_i`` share is *generated* inside
  her process; no dealer, no provisioning step, and the full private key
  (p, q, λ, µ) exists in no process at any time;
* serves the reactive protocol loop
  (:class:`~repro.federation.party.PartyRuntime`): candidate-split
  statistics, split application, mask contributions, decryption shares and
  logistic batch ops all run as reactions to frames arriving on her own
  socket.

The super client's process is the :class:`RuntimeFederation` — an ordinary
:class:`~repro.federation.federation.Federation` whose context holds *only*
her party (``local_parties=(0,)``).  The other parties appear as
:class:`StandalonePartyClient` stubs that expose exactly the public facts
the protocol needs (feature/split *counts*, fetched over the control
plane); their columns, candidate thresholds and key shares exist only in
their own processes, and any accidental local read fails loudly.

Control plane: administration (counter snapshots, key-material audits,
shutdown) travels over the same sockets via the bus's unaccounted
``send_control`` / ``receive_control`` — orchestration bytes never touch
the protocol books, so the parity suite can pin the runtime row
bit-identical to the in-memory one.  Because each party's inbox is FIFO, a
control request also acts as a barrier: by the time her reply arrives she
has reacted to every protocol frame sent before it.

Restart/resume: with ``[party] key_state`` set, a party persists her own
``(n, i, d_i, θ)`` to her own disk after keygen and resumes from it when
relaunched — basic-protocol prediction needs nothing else from her
(decryption shares + prediction-vector sinks), so a party killed after
training can be restarted and serve predictions without rerunning keygen.

Data: the quickstart derives each party's columns deterministically from
the shared ``[data]`` spec (synthetic generators are seeded), standing in
for each organisation loading her own table in a real deployment.
"""

from __future__ import annotations

import argparse
import json
import secrets
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, NoReturn

import numpy as np

from repro.analysis import opcount
from repro.core.config import PivotConfig
from repro.core.context import PivotClient
from repro.crypto.batch import BatchCryptoEngine
from repro.crypto.distkeygen import KeygenParty
from repro.crypto.encoding import PaillierEncoder
from repro.crypto.paillier import PaillierPublicKey
from repro.crypto.threshold import ThresholdKeyShare
from repro.data.partition import vertical_partition
from repro.data.synthetic import make_classification, make_regression
from repro.federation.federation import Federation
from repro.federation.locality import LocalView, as_party
from repro.federation.party import Party, PartyEndpoint, PartyRuntime
from repro.mpc.field import MERSENNE_127
from repro.network.bus import CONTROL_TAG_PREFIX, MessageBus
from repro.network.flows import run_distributed_keygen
from repro.network.transport import PeerTransport
from repro.network.wire import Request, WireCodec
from repro.tree.cart import TreeParams
from repro.tree.splits import candidate_splits_matrix

__all__ = [
    "RuntimeConfig",
    "RuntimeFederation",
    "StandalonePartyClient",
    "StandalonePartyRuntime",
    "free_addresses",
    "load_runtime_config",
    "main",
    "run_orchestrator",
    "write_party_configs",
]

#: Control-plane operations a standalone party answers (tag == op).
CONTROL_OPS = ("ctl-info", "ctl-snapshot", "ctl-keyreport", "ctl-shutdown")

#: secret_summary key order on the wire (dicts are not a wire type).
_KEYREPORT_FIELDS = (
    "p_share",
    "q_share",
    "beta_share",
    "d_share",
    "aux_private_key",
    "full_private_key",
)


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuntimeConfig:
    """One party's view of a standalone-runtime deployment (one TOML file).

    Every party of a deployment shares everything except ``index`` (and the
    per-party ``key_state`` path): the address book, the data spec and the
    pivot parameters must agree or keygen/diverging datasets will fail
    loudly.  The super client must be party 0 — the protocol's
    request/convert flows anchor at client 1 (index 0).
    """

    index: int
    addresses: tuple[tuple[str, int], ...]
    timeout: float = 15.0
    connect_timeout: float = 30.0
    key_state: str | None = None
    max_idle: float | None = None
    # [data]
    data_kind: str = "classification"
    n_samples: int = 24
    n_features: int = 6
    n_classes: int = 2
    data_seed: int = 11
    super_client: int = 0
    # [pivot]
    keysize: int = 256
    seed: int | None = 3
    kappa: int = 40
    frac_bits: int = 16
    max_depth: int = 2
    max_splits: int = 2
    protocol: str = "basic"
    # [run] (read by the orchestrator entrypoint only)
    run_fit: bool = True
    predict_rows: int = 6

    def __post_init__(self) -> None:
        if len(self.addresses) < 2:
            raise ValueError("a runtime deployment needs at least 2 parties")
        if not 0 <= self.index < len(self.addresses):
            raise ValueError(f"party index {self.index} out of range")
        if self.super_client != 0:
            raise ValueError(
                "the standalone runtime requires the super client to be "
                "party 0 (the protocol's request flows anchor at client 1)"
            )
        if self.data_kind not in ("classification", "regression"):
            raise ValueError(f"unknown data kind {self.data_kind!r}")
        if self.protocol == "enhanced":
            raise ValueError(
                "the enhanced protocol is centrally driven (Eq. 10, hidden "
                "splits) and is not supported by the standalone runtime"
            )

    @property
    def n_parties(self) -> int:
        return len(self.addresses)

    @property
    def task(self) -> str:
        return self.data_kind

    @property
    def is_orchestrator(self) -> bool:
        return self.index == self.super_client

    def make_dataset(self) -> tuple[np.ndarray, np.ndarray]:
        """The deployment's shared deterministic synthetic dataset."""
        if self.data_kind == "classification":
            return make_classification(
                self.n_samples,
                self.n_features,
                n_classes=self.n_classes,
                seed=self.data_seed,
            )
        return make_regression(
            self.n_samples, self.n_features, seed=self.data_seed
        )

    def pivot_config(self) -> PivotConfig:
        return PivotConfig(
            keysize=self.keysize,
            frac_bits=self.frac_bits,
            kappa=self.kappa,
            seed=self.seed,
            keygen="distributed",
            # No dealer key exists to simulate with, whatever the
            # PIVOT_DECRYPT_MODE env leg says: always really combine.
            decrypt_mode="combine",
            protocol=self.protocol,
            tree=TreeParams(max_depth=self.max_depth, max_splits=self.max_splits),
        )

    def make_transport(self) -> PeerTransport:
        return PeerTransport(
            self.n_parties,
            self.index,
            list(self.addresses),
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
        )


def _parse_address(text: str) -> tuple[str, int]:
    host, _, port = str(text).rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address {text!r} is not host:port")
    return host, int(port)


def load_runtime_config(path: str | Path) -> RuntimeConfig:
    """Parse one party's ``partyN.toml`` into a :class:`RuntimeConfig`."""
    import tomllib

    with open(path, "rb") as handle:
        raw = tomllib.load(handle)
    party = raw.get("party", {})
    network = raw.get("network", {})
    data = raw.get("data", {})
    pivot = raw.get("pivot", {})
    run = raw.get("run", {})
    if "index" not in party:
        raise ValueError(f"{path}: [party] must set index")
    if "addresses" not in network:
        raise ValueError(f"{path}: [network] must set addresses")
    return RuntimeConfig(
        index=int(party["index"]),
        addresses=tuple(_parse_address(a) for a in network["addresses"]),
        timeout=float(network.get("timeout", 15.0)),
        connect_timeout=float(network.get("connect_timeout", 30.0)),
        key_state=party.get("key_state"),
        max_idle=(
            float(party["max_idle"]) if "max_idle" in party else None
        ),
        data_kind=str(data.get("kind", "classification")),
        n_samples=int(data.get("n_samples", 24)),
        n_features=int(data.get("n_features", 6)),
        n_classes=int(data.get("n_classes", 2)),
        data_seed=int(data.get("seed", 11)),
        super_client=int(data.get("super_client", 0)),
        keysize=int(pivot.get("keysize", 256)),
        seed=(int(pivot["seed"]) if pivot.get("seed") is not None else None),
        kappa=int(pivot.get("kappa", 40)),
        frac_bits=int(pivot.get("frac_bits", 16)),
        max_depth=int(pivot.get("max_depth", 2)),
        max_splits=int(pivot.get("max_splits", 2)),
        protocol=str(pivot.get("protocol", "basic")),
        run_fit=bool(run.get("fit", True)),
        predict_rows=int(run.get("predict_rows", 6)),
    )


def free_addresses(n_parties: int, host: str = "127.0.0.1") -> list[tuple[str, int]]:
    """Reserve ``n_parties`` currently-free localhost ports (test/CI helper)."""
    import socket

    sockets, addresses = [], []
    try:
        for _ in range(n_parties):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
            addresses.append((host, sock.getsockname()[1]))
    finally:
        for sock in sockets:
            sock.close()
    return addresses


def write_party_configs(
    directory: str | Path,
    addresses: list[tuple[str, int]] | None = None,
    n_parties: int = 3,
    key_state: bool = False,
    max_idle: float | None = 300.0,
    **overrides: Any,
) -> list[Path]:
    """Write one ``partyN.toml`` per party; returns the paths in index order.

    The quickstart generator behind the CI runtime-smoke job and the
    deployment tests: every file shares the address book, data spec and
    pivot parameters (``overrides`` feed :class:`RuntimeConfig` fields),
    differing only in ``[party] index`` (and ``key_state`` when enabled).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if addresses is None:
        addresses = free_addresses(n_parties)
    template = RuntimeConfig(
        index=0, addresses=tuple(addresses), max_idle=max_idle, **overrides
    )
    address_list = ", ".join(f'"{h}:{p}"' for h, p in template.addresses)
    paths = []
    for i in range(template.n_parties):
        lines = ["[party]", f"index = {i}"]
        if key_state:
            lines.append(f'key_state = "{directory / f"party{i}.key.json"}"')
        if template.max_idle is not None:
            lines.append(f"max_idle = {float(template.max_idle)}")
        lines += [
            "",
            "[network]",
            f"addresses = [{address_list}]",
            f"timeout = {float(template.timeout)}",
            f"connect_timeout = {float(template.connect_timeout)}",
            "",
            "[data]",
            f'kind = "{template.data_kind}"',
            f"n_samples = {template.n_samples}",
            f"n_features = {template.n_features}",
            f"n_classes = {template.n_classes}",
            f"seed = {template.data_seed}",
            f"super_client = {template.super_client}",
            "",
            "[pivot]",
            f"keysize = {template.keysize}",
        ]
        if template.seed is not None:
            lines.append(f"seed = {template.seed}")
        lines += [
            f"kappa = {template.kappa}",
            f"frac_bits = {template.frac_bits}",
            f"max_depth = {template.max_depth}",
            f"max_splits = {template.max_splits}",
            f'protocol = "{template.protocol}"',
            "",
            "[run]",
            f"fit = {'true' if template.run_fit else 'false'}",
            f"predict_rows = {template.predict_rows}",
            "",
        ]
        path = directory / f"party{i}.toml"
        path.write_text("\n".join(lines))
        paths.append(path)
    return paths


# ---------------------------------------------------------------------------
# the standalone party process
# ---------------------------------------------------------------------------


class StandalonePartyRuntime:
    """One non-super party's whole process: socket, keys, event loop.

    Deliberately *not* a :class:`~repro.core.context.PivotContext`: a
    standalone party runs no MPC, owns no labels, and drives no flows —
    she needs her columns, her codec/bus on her own socket, her keygen
    state machine (or a resumed ``d_i``), her crypto engine and her
    :class:`~repro.federation.party.PartyRuntime`.  Everything she ever
    does is a reaction in :meth:`serve`.
    """

    def __init__(self, config: RuntimeConfig) -> None:
        if config.is_orchestrator:
            raise ValueError(
                "the super client's process is the RuntimeFederation "
                "orchestrator, not a StandalonePartyRuntime"
            )
        self.config = config
        self.index = config.index
        self.running = True
        #: Fresh per-launch marker so the orchestrator can tell a restart
        #: (reset counters) from a continuation when merging snapshots.
        self.boot = secrets.randbits(63)
        self._ops_reported = {"ce": 0, "cd": 0, "cs": 0, "cc": 0}

        # Her columns: the shared deterministic dataset, restricted to her
        # vertical slice (stands in for loading her own table).
        X, y = config.make_dataset()
        partition = vertical_partition(
            X,
            y,
            config.n_parties,
            task=config.task,
            super_client=config.super_client,
        )
        with as_party(self.index):  # her own columns, in her own process
            block = partition.local_features[self.index]
            split_values = candidate_splits_matrix(block, config.max_splits)
        del X, y, partition  # she keeps only her own columns
        self.n_samples = int(block.shape[0])

        # Transport + key-less codec + bus: the codec is bound to the
        # public key distributed keygen produces (or the resumed one).
        self.field_q = MERSENNE_127.q
        self.codec = WireCodec(None, share_modulus=self.field_q)
        self.bus = MessageBus(
            config.n_parties,
            codec=self.codec,
            transport=config.make_transport(),
            local_parties=(self.index,),
        )
        try:
            self.keygen_machine: KeygenParty | None = None
            self.resumed = False
            state_path = (
                Path(config.key_state) if config.key_state else None
            )
            if state_path is not None and state_path.exists():
                public_key, share, theta = self._load_key_state(state_path)
                self.resumed = True
            else:
                public_key, share, theta = self._run_keygen()
                if state_path is not None:
                    self._save_key_state(state_path, public_key, share, theta)
            self.public_key = public_key
            self.key_share = share
            self.theta = theta
            self.encoder = PaillierEncoder(
                public_key, frac_bits=config.frac_bits
            )
            self.codec.bind(public_key, encoder=self.encoder)
            self.engine = BatchCryptoEngine(
                public_key, frac_bits=config.frac_bits, encoder=self.encoder
            )
            client = PivotClient(
                index=self.index,
                features=LocalView(
                    block, self.index, name="features", strict=True
                ),
                split_values=split_values,
            )
            self.runtime = PartyRuntime(
                PartyEndpoint(self.bus, self.index),
                client=client,
                engine=self.engine,
                field_q=self.field_q,
                key_share=share,
            )
        except BaseException:
            self.bus.close()
            raise

    # -- key material ------------------------------------------------------

    def _run_keygen(self) -> tuple[PaillierPublicKey, ThresholdKeyShare, int]:
        """Join distributed keygen with *her* machine only; remote waves
        arrive over her socket (run_distributed_keygen blocks on them)."""
        self.keygen_machine = KeygenParty(
            self.index,
            self.config.n_parties,
            self.config.keysize,
            seed=self.config.seed,
            kappa=self.config.kappa,
        )
        results = run_distributed_keygen(
            self.bus, {self.index: self.keygen_machine}
        )
        result = results[self.index]
        return result.public_key, result.share, result.theta

    def _save_key_state(
        self,
        path: Path,
        public_key: PaillierPublicKey,
        share: Any,
        theta: int,
    ) -> None:
        """Persist this party's own key material to her own disk.

        Contains her ``d_i`` — private to her machine, exactly like any
        service's key file; it never crosses the bus.
        """
        path.write_text(
            json.dumps(
                {
                    "n": public_key.n,
                    "party_index": share.party_index,
                    "d_share": share.d_share,
                    "theta": theta,
                    "n_parties": self.config.n_parties,
                }
            )
        )

    def _load_key_state(
        self, path: Path
    ) -> tuple[PaillierPublicKey, ThresholdKeyShare, int]:
        state = json.loads(path.read_text())
        if state["party_index"] != self.index:
            raise ValueError(
                f"key state {path} belongs to party {state['party_index']}, "
                f"this is party {self.index}"
            )
        if state["n_parties"] != self.config.n_parties:
            raise ValueError(f"key state {path} is for a different deployment")
        public_key = PaillierPublicKey(int(state["n"]))
        share = ThresholdKeyShare(
            public_key, self.index, int(state["d_share"])
        )
        return public_key, share, int(state["theta"])

    def secret_summary(self) -> dict[str, bool]:
        """What key material this process holds (never the full key)."""
        if self.keygen_machine is not None:
            return self.keygen_machine.secret_summary()
        # Resumed from the key-state file: only (i, d_i) exists here.
        return {
            "p_share": False,
            "q_share": False,
            "beta_share": False,
            "d_share": True,
            "aux_private_key": False,
            "full_private_key": False,
        }

    # -- serve loop --------------------------------------------------------

    def serve(self) -> None:
        """React until shutdown: the party's entire protocol life.

        Every pop is uncounted first (:meth:`MessageBus.receive_control`)
        and dispatched on its tag: ``ctl-*`` frames are administration,
        anything else is protocol — counted as consumed and handed to the
        :class:`~repro.federation.party.PartyRuntime` event loop, whose
        handlers may themselves receive follow-up frames (counted there).
        An idle inbox just times out and loops; with ``max_idle`` set, a
        party abandoned by her orchestrator eventually exits instead of
        lingering forever.
        """
        idle_since = time.monotonic()
        while self.running:
            try:
                sender, tag, payload = self.bus.receive_control(self.index)
            except LookupError:
                if (
                    self.config.max_idle is not None
                    and time.monotonic() - idle_since > self.config.max_idle
                ):
                    break
                continue
            idle_since = time.monotonic()
            if tag.startswith(CONTROL_TAG_PREFIX):
                self._answer_control(sender, tag, payload)
            else:
                self.bus.consumed += 1
                self.runtime.handle(sender, tag, payload)

    def _answer_control(self, sender: int, tag: str, payload: Any) -> None:
        if not isinstance(payload, Request) or payload.op != tag:
            raise ValueError(
                f"party {self.index}: malformed control frame {tag!r}"
            )
        if tag == "ctl-info":
            client = self.runtime.client
            body = [
                self.n_samples,
                client.n_features,
                [client.n_splits(j) for j in range(client.n_features)],
            ]
        elif tag == "ctl-snapshot":
            ops = opcount.snapshot()
            body = [
                self.boot,
                self.bus.messages,
                self.bus.consumed,
                self.bus.pending(self.index),
                self.bus.bytes,
                self.bus.bytes_measured,
                self.bus.bytes_estimated,
                self.bus.rounds,
                [[key.encode(), n] for key, n in sorted(self.bus.by_tag.items())],
                [ops["ce"], ops["cd"], ops["cs"], ops["cc"]],
            ]
        elif tag == "ctl-keyreport":
            summary = self.secret_summary()
            body = [
                [name.encode(), int(summary[name])]
                for name in _KEYREPORT_FIELDS
            ]
        elif tag == "ctl-shutdown":
            self.running = False
            body = [1]
        else:
            raise ValueError(
                f"party {self.index}: unknown control op {tag!r}"
            )
        self.bus.send_control(self.index, sender, Request(tag, body), tag=tag)

    def close(self) -> None:
        self.running = False
        self.engine.close()
        self.bus.close()


# ---------------------------------------------------------------------------
# the orchestrator process (the super client)
# ---------------------------------------------------------------------------


class _StandaloneColumns:
    """Shape-only stand-in for a standalone party's columns.

    Mirrors the deployed topology's ``_RemoteColumns``: anything beyond
    shape/len fails loudly — the columns exist only in the party's own
    process, reachable solely through her sanctioned protocol reactions.
    """

    def __init__(self, owner: int, shape: tuple[int, int]) -> None:
        self.owner = owner
        self.shape = shape

    @property
    def ndim(self) -> int:
        return 2

    def __len__(self) -> int:
        return self.shape[0]

    def _refuse(self) -> NoReturn:
        raise RuntimeError(
            f"party {self.owner}'s columns live in her standalone runtime "
            "process; the orchestrator holds no copy to read"
        )

    def read(self) -> np.ndarray:
        self._refuse()

    def __getitem__(self, key: Any) -> Any:
        self._refuse()

    def __array__(self, dtype: Any = None, copy: bool | None = None) -> np.ndarray:
        self._refuse()

    def __repr__(self) -> str:
        return f"_StandaloneColumns(owner={self.owner}, shape={self.shape})"


class StandalonePartyClient:
    """Client stub for a party living in her own standalone process.

    Exposes exactly the *public* facts the centrally-driven parts of the
    protocol need — her index, her feature count, and her per-feature
    candidate-split **counts** (fetched lazily over the control plane; the
    threshold *values* stay with her, revealed one at a time only when the
    basic protocol publishes a chosen split).  Every local computation
    (indicators, rows, logistic folds) happens in her process as a
    :class:`~repro.federation.party.PartyRuntime` reaction, so this stub
    refuses them all.
    """

    def __init__(self, index: int, shape: tuple[int, int]) -> None:
        self.index = index
        self.features = _StandaloneColumns(index, shape)
        self._shape = shape
        self._split_counts: list[int] | None = None
        #: bound to RuntimeFederation._control
        self._fetch: Callable[..., Any] | None = None

    @property
    def n_features(self) -> int:
        return self._shape[1]

    def n_splits(self, feature: int) -> int:
        if self._split_counts is None:
            if self._fetch is None:
                raise RuntimeError(
                    f"party {self.index}'s stub is not bound to a "
                    "RuntimeFederation yet"
                )
            n_samples, n_features, counts = self._fetch(self.index, "ctl-info")
            if (int(n_samples), int(n_features)) != self._shape:
                raise ValueError(
                    f"party {self.index} reports a {n_samples}x{n_features} "
                    f"block; the shared data spec says {self._shape}"
                )
            self._split_counts = [int(c) for c in counts]
        return self._split_counts[feature]

    def _refuse(self, what: str) -> NoReturn:
        raise NotImplementedError(
            f"{what} is party {self.index}'s local computation; in the "
            "standalone topology it runs in her own process as a protocol "
            "reaction, never through the orchestrator"
        )

    @property
    def split_values(self) -> NoReturn:
        self._refuse("split_values")

    def indicator(self, feature: int, split: int) -> NoReturn:
        self._refuse("indicator")

    def indicator_matrix(self, feature: int) -> NoReturn:
        self._refuse("indicator_matrix")

    def local_row(self, t: int) -> NoReturn:
        self._refuse("local_row")

    def batch_sums(self, rows: Any, weights: Any) -> NoReturn:
        self._refuse("batch_sums")

    def weight_update(
        self, rows: Any, weights: Any, loss_cts: Any, scale: Any
    ) -> NoReturn:
        self._refuse("weight_update")


class RuntimeFederation(Federation):
    """The super client's process in a standalone-runtime deployment.

    An ordinary :class:`~repro.federation.federation.Federation` — same
    estimator API, same parity guarantees — except physically minimal:
    the context hosts only party 0's inbox, key-material and columns
    (``local_parties=(0,)``); distributed keygen runs her machine against
    the remote parties' over the socket mesh; the other parties are
    :class:`StandalonePartyClient` stubs.  Cost snapshots and the
    end-of-run drain check merge the remote parties' control-plane
    reports, so accounting stays comparable with the single-process rows.

    The standalone party processes must already be running (or starting —
    the peer transport retries connections) when this constructor runs:
    keygen blocks until all m machines participate.
    """

    def __init__(self, config: RuntimeConfig) -> None:
        if not config.is_orchestrator:
            raise ValueError(
                f"RuntimeFederation is the super client's process; this "
                f"config is for party {config.index}"
            )
        self.runtime_config = config
        X, y = config.make_dataset()
        partition = vertical_partition(
            X,
            y,
            config.n_parties,
            task=config.task,
            super_client=config.super_client,
        )
        sup = config.super_client
        self._remote = tuple(
            i for i in range(config.n_parties) if i != sup
        )
        # Orchestrator-side Party handles: hers is real, every remote block
        # is NaN poison of the right shape — reading one fails or visibly
        # poisons parity-checked output (the DeployedFederation guarantee).
        parties, masked, stubs = [], [], {}
        for i, block in enumerate(partition.local_features):
            if i == sup:
                parties.append(Party(block, labels=y, name="super"))
                masked.append(block)
                continue
            poison = np.full_like(block, np.nan)
            parties.append(Party(poison, name=f"party{i}"))
            masked.append(poison)
            stubs[i] = StandalonePartyClient(i, block.shape)
        from dataclasses import replace as _replace

        partition = _replace(partition, local_features=tuple(masked))
        self.stubs = stubs
        # Assembly runs distributed keygen over the socket mesh before the
        # codec is bound — the constructor returns with pk shared and only
        # d_0 in this process.
        self._assemble(
            parties,
            partition,
            config.pivot_config(),
            None,
            config.make_transport(),
            remote_clients=dict(stubs),
            local_parties=(sup,),
        )
        for stub in stubs.values():
            stub._fetch = self._control
        #: Last merged per-party state: (boot, [ce, cd, cs, cc]) so op
        #: deltas merge exactly once, and cached bus counters for
        #: cost_snapshot.  The first pull is the baseline (assembly work
        #: stays out of later counting windows, like every other row).
        self._party_ops: dict[int, tuple[int, list[int]]] = {}
        self._party_bus: dict[int, dict] = {}
        self._closed = False
        for i in self._remote:
            self._pull_state(i)

    # -- control plane -----------------------------------------------------

    def _control(self, party: int, op: str, body: list | None = None) -> list:
        """One request/reply round trip on the unaccounted control plane.

        Per-party FIFO makes this a barrier: the reply proves the party
        has reacted to every protocol frame that preceded the request.
        """
        bus = self.context.bus
        sup = self.super_client
        bus.send_control(sup, party, Request(op, list(body or [])), tag=op)
        sender, tag, payload = bus.receive_control(sup)
        if sender != party or tag != op or not isinstance(payload, Request):
            raise RuntimeError(
                f"expected a {op!r} reply from party {party}; got "
                f"{tag!r} from party {sender} — protocol traffic is "
                "leaking past its round barriers"
            )
        return list(payload.body)

    def _pull_state(self, party: int) -> dict:
        """Fetch one party's counters; merge her op-count delta exactly once.

        A changed boot marker means the party restarted (fresh counters):
        her tallies restart as a new baseline rather than merging a
        negative delta.
        """
        body = self._control(party, "ctl-snapshot")
        (
            boot,
            messages,
            consumed,
            pending,
            nbytes,
            measured,
            estimated,
            rounds,
            tag_pairs,
            ops,
        ) = body
        ops = [int(v) for v in ops]
        previous = self._party_ops.get(party)
        if previous is not None and previous[0] == boot:
            delta = [now - then for now, then in zip(ops, previous[1])]
            opcount.GLOBAL.ce += delta[0]
            opcount.GLOBAL.cd += delta[1]
            opcount.GLOBAL.cs += delta[2]
            opcount.GLOBAL.cc += delta[3]
        self._party_ops[party] = (boot, ops)
        state = {
            "boot": int(boot),
            "messages": int(messages),
            "consumed": int(consumed),
            "pending": int(pending),
            "bytes": int(nbytes),
            "bytes_measured": int(measured),
            "bytes_estimated": int(estimated),
            "rounds": int(rounds),
            "by_tag": {key.decode(): int(n) for key, n in tag_pairs},
        }
        self._party_bus[party] = state
        return state

    # -- federation API overrides ------------------------------------------

    def context_for(
        self,
        protocol: str | None = None,
        dp: Any = None,
        malicious: bool | None = None,
    ) -> Any:
        resolved = protocol or self.config.protocol
        if resolved == "enhanced":
            raise NotImplementedError(
                "the enhanced protocol's model update (Eq. 10) and hidden "
                "split selection are centrally driven; the standalone "
                "runtime topology supports the basic protocol"
            )
        return super().context_for(protocol=protocol, dp=dp, malicious=malicious)

    def assert_drained(self) -> None:
        """Every inbox empty — the orchestrator's *and* every party's.

        The local check runs first so a control reply cannot interleave
        with leftover protocol mail; each party's report then doubles as
        the barrier that she has reacted to everything sent before it.
        """
        self.context.bus.assert_drained()
        for i in self._remote:
            state = self._pull_state(i)
            if state["pending"]:
                raise AssertionError(
                    f"party {i} still has {state['pending']} undelivered "
                    "protocol messages"
                )

    def cost_snapshot(self) -> dict[str, object]:
        """Deployment-wide accounting: every send counted once, at its
        sender's bus, summed across processes; rounds are the protocol's
        barrier count (every process applies the same barriers locally, so
        they are reported once, not summed)."""
        for i in self._remote:
            self._pull_state(i)
        snap = self.context.cost_snapshot()
        bus = dict(snap["bus"])
        by_tag = dict(bus["by_tag"])
        for state in self._party_bus.values():
            for key in (
                "messages",
                "consumed",
                "pending",
                "bytes",
                "bytes_measured",
                "bytes_estimated",
            ):
                bus[key] += state[key]
            for tag, n in state["by_tag"].items():
                by_tag[tag] = by_tag.get(tag, 0) + n
        bus["by_tag"] = by_tag
        bus["simulated_seconds"] = self.context.bus.model.time(
            bus["rounds"], bus["bytes"]
        )
        snap["bus"] = bus
        return snap

    def key_report(self) -> dict[int, dict[str, bool]]:
        """Every process's key-material audit: no full private key anywhere."""
        report = {
            self.super_client: self.context.keygen_machines[
                self.super_client
            ].secret_summary()
        }
        for i in self._remote:
            pairs = self._control(i, "ctl-keyreport")
            report[i] = {key.decode(): bool(v) for key, v in pairs}
        return report

    def shutdown_parties(self) -> None:
        """Best-effort ctl-shutdown to every standalone party."""
        for i in self._remote:
            try:
                self._control(i, "ctl-shutdown")
            except Exception:
                pass  # already gone — her exit is her own process's business

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.shutdown_parties()
        super().close()


# ---------------------------------------------------------------------------
# entrypoint
# ---------------------------------------------------------------------------


def run_orchestrator(config: RuntimeConfig) -> dict:
    """The quickstart: federate, fit, predict; returns a JSON-able summary."""
    from repro.federation.estimators import PivotClassifier, PivotRegressor

    X, y = config.make_dataset()
    summary: dict[str, object] = {
        "parties": config.n_parties,
        "keygen": "distributed",
        "task": config.task,
        "protocol": config.protocol,
    }
    with RuntimeFederation(config) as fed:
        summary["key_report"] = {
            str(i): report for i, report in fed.key_report().items()
        }
        if config.run_fit:
            if config.task == "classification":
                estimator = PivotClassifier(protocol=config.protocol)
            else:
                estimator = PivotRegressor(protocol=config.protocol)
            estimator.fit(fed)
            rows = X[: config.predict_rows]
            predictions = estimator.predict(rows)
            summary["predictions"] = [float(p) for p in predictions]
            summary["score"] = float(
                estimator.score(rows, y[: config.predict_rows])
            )
            summary["signature"] = estimator.model_.structure_signature()
        cost = fed.cost_snapshot()
        summary["bytes"] = cost["bus"]["bytes"]
        summary["rounds"] = cost["bus"]["rounds"]
        fed.assert_drained()
    summary["ok"] = True
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.federation.runtime",
        description=(
            "Run one Pivot party as a standalone process. The super "
            "client's config runs the orchestrator quickstart (fit + "
            "predict, JSON summary on stdout); any other party serves her "
            "reactive event loop until shutdown."
        ),
    )
    parser.add_argument(
        "--config", required=True, help="path to this party's partyN.toml"
    )
    args = parser.parse_args(argv)
    config = load_runtime_config(args.config)
    if config.is_orchestrator:
        summary = run_orchestrator(config)
        json.dump(summary, sys.stdout)
        sys.stdout.write("\n")
        return 0
    party = StandalonePartyRuntime(config)
    host, port = config.addresses[config.index]
    print(
        f"party {config.index} serving on {host}:{port} "
        f"({'resumed' if party.resumed else 'keygen complete'})",
        file=sys.stderr,
        flush=True,
    )
    try:
        party.serve()
    finally:
        party.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
