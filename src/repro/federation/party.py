"""The Party abstraction: one organisation in a vertical federation (§3.1).

A party owns exactly one client's feature columns (behind a
:class:`~repro.federation.locality.LocalView` read guard), her partial
threshold-Paillier secret key, and a :class:`PartyEndpoint` on the message
bus.  The *super client* party additionally owns the label vector.  A
party is constructed with raw local data and *bound* by the
:class:`~repro.federation.federation.Federation` during assembly, which
assigns the index, the global column ids, the key share, and the endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.federation.locality import LocalView, as_party

__all__ = ["Party", "PartyEndpoint"]


@dataclass
class PartyEndpoint:
    """A party's handle on the transport: send/receive as herself.

    Thin binding of the shared :class:`~repro.network.bus.MessageBus` to
    one party index — the deployment-shaped API (each party only ever
    addresses messages *from herself* and reads *her own* inbox).
    """

    bus: object
    index: int

    def send(self, receiver: int, payload, tag: str = "") -> int:
        """Serialize and route ``payload`` to ``receiver``; returns bytes."""
        return self.bus.send_payload(self.index, receiver, payload, tag=tag)

    def broadcast(self, payload, tag: str = "") -> int:
        """Send ``payload`` to every other party; returns per-receiver bytes."""
        return self.bus.broadcast_payload(self.index, payload, tag=tag)

    def receive(self, tag: str | None = None):
        """Pop and decode this party's oldest pending message."""
        return self.bus.receive(self.index, tag=tag)

    def pending(self) -> int:
        """Messages waiting in this party's inbox.

        Goes through the bus API (not ``bus.transport`` internals): a
        remote transport must get the chance to flush in-flight frames
        before the count is read.
        """
        return self.bus.pending(self.index)


class Party:
    """One organisation: her columns, her key share, her bus endpoint.

    Build with the raw local data::

        bank    = Party(X_bank, labels=y, name="bank")     # super client
        fintech = Party(X_fintech, name="fintech")

    and hand the list to :class:`~repro.federation.federation.Federation`,
    which performs the joint setup (key generation, MPC preprocessing,
    candidate splits) and binds each party to her runtime identity.  After
    binding, :attr:`features` / :attr:`labels` are strict
    :class:`~repro.federation.locality.LocalView` guards — reading them
    outside this party's scope raises
    :class:`~repro.federation.locality.LocalityError` when the federation
    enforces locality.
    """

    def __init__(
        self,
        features: np.ndarray,
        *,
        labels: np.ndarray | None = None,
        name: str | None = None,
    ):
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("party features must be a 2-D (n x d_i) array")
        self._raw_features = features
        self._raw_labels = None if labels is None else np.asarray(labels)
        if self._raw_labels is not None and len(self._raw_labels) != len(features):
            raise ValueError("features and labels disagree on sample count")
        self.name = name
        # Set by DeployedFederation when the columns are shipped to a
        # worker process and the local copy is poisoned; a flagged party
        # cannot be federated again (build a fresh one from source data).
        self._columns_remote = False
        # Assigned by Federation._bind():
        self.index: int | None = None
        self.columns: tuple[int, ...] | None = None
        self.key_share = None
        self.endpoint: PartyEndpoint | None = None
        self._features_view: LocalView | None = None
        self._labels_view: LocalView | None = None

    # -- pre-binding facts -------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self._raw_features.shape[0]

    @property
    def n_features(self) -> int:
        return self._raw_features.shape[1]

    @property
    def holds_labels(self) -> bool:
        return self._raw_labels is not None

    @property
    def is_bound(self) -> bool:
        return self.index is not None

    @property
    def is_super(self) -> bool:
        return self.holds_labels

    # -- bound identity ----------------------------------------------------

    def _bind(
        self,
        index: int,
        columns: tuple[int, ...],
        features_view: LocalView,
        labels_view: LocalView | None,
        key_share,
        endpoint: PartyEndpoint,
    ) -> None:
        self.index = index
        self.columns = columns
        self._features_view = features_view
        self._labels_view = labels_view
        self.key_share = key_share
        self.endpoint = endpoint

    @property
    def features(self):
        """This party's columns: a read-guarded view once federated."""
        if self._features_view is not None:
            return self._features_view
        return self._raw_features

    @property
    def labels(self):
        """The label vector (super client only), read-guarded once federated."""
        if self._labels_view is not None:
            return self._labels_view
        return self._raw_labels

    def local(self):
        """Scope marking a block as this party's own computation."""
        if self.index is None:
            raise RuntimeError("party is not federated yet")
        return as_party(self.index)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        bound = f" index={self.index}" if self.is_bound else " (unbound)"
        role = " super" if self.holds_labels else ""
        return (
            f"Party(d_i={self.n_features}, n={self.n_samples}{label}{bound}{role})"
        )
