"""The Party abstraction: one organisation in a vertical federation (§3.1).

A party owns exactly one client's feature columns (behind a
:class:`~repro.federation.locality.LocalView` read guard), her partial
threshold-Paillier secret key, and a :class:`PartyEndpoint` on the message
bus.  The *super client* party additionally owns the label vector.  A
party is constructed with raw local data and *bound* by the
:class:`~repro.federation.federation.Federation` during assembly, which
assigns the index, the global column ids, the key share, and the endpoint.

:class:`PartyService` is the party's *reactive* protocol half: a loop over
her endpoint that answers threshold-decryption share requests (paper §2.1
— every one of the m clients must exponentiate with her own ``d_i`` for
any plaintext to exist).  The per-party process deployment points the
service's compute hook at the owning worker process, so the share
exponentiations run under the key owner's authority, not the
orchestrator's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.encoding import EncryptedNumber
from repro.federation.locality import LocalView, as_party
from repro.network.wire import PartialDecryptionVector

__all__ = ["Party", "PartyEndpoint", "PartyService"]


@dataclass
class PartyEndpoint:
    """A party's handle on the transport: send/receive as herself.

    Thin binding of the shared :class:`~repro.network.bus.MessageBus` to
    one party index — the deployment-shaped API (each party only ever
    addresses messages *from herself* and reads *her own* inbox).
    """

    bus: object
    index: int

    def send(self, receiver: int, payload, tag: str = "") -> int:
        """Serialize and route ``payload`` to ``receiver``; returns bytes."""
        # pivotlint: disable=PL005 -- single-party transport primitive: the
        # round barrier belongs to the protocol flow driving all m parties
        # (flows.py / the reactive services), not to one party's send.
        return self.bus.send_payload(self.index, receiver, payload, tag=tag)

    def broadcast(self, payload, tag: str = "") -> int:
        """Send ``payload`` to every other party; returns per-receiver bytes."""
        # pivotlint: disable=PL005 -- single-party transport primitive: the
        # caller's protocol flow owns the round barrier (see send above).
        return self.bus.broadcast_payload(self.index, payload, tag=tag)

    def receive(self, tag: str | None = None):
        """Pop and decode this party's oldest pending message."""
        return self.bus.receive(self.index, tag=tag)

    def pending(self) -> int:
        """Messages waiting in this party's inbox.

        Goes through the bus API (not ``bus.transport`` internals): a
        remote transport must get the chance to flush in-flight frames
        before the count is read.
        """
        return self.bus.pending(self.index)


class PartyService:
    """One party's reactive protocol loop: answer decrypt-share requests.

    Driven through :meth:`PartyEndpoint.receive`: when a threshold
    decryption is in flight, :meth:`answer_decrypt` pops the ciphertext
    batch broadcast to this party, computes her decryption-share vector
    c^{d_i} mod n², and broadcasts the vector back so every client can
    combine.  Two ways to compute the shares:

    * ``key_share`` — the party's own :class:`ThresholdKeyShare`, for
      parties whose key material lives in this process (the super client,
      and every party of an in-memory federation).  ``parallel_map``
      optionally fans the full-size exponentiations out over a worker
      pool (:meth:`repro.crypto.batch.BatchCryptoEngine._map`).
    * ``compute_shares`` — a hook running the exponentiations elsewhere;
      :class:`~repro.federation.deployment.DeployedFederation` points it
      at the owning worker's ``partial_decrypt`` op, so a remote party's
      ``d_i`` is used only inside her own process.

    The orchestrator therefore stops being the sole executor of the
    protocol schedule: it can move messages, but plaintexts only exist
    once every party's service has answered with her real share vector.
    """

    def __init__(
        self,
        endpoint: PartyEndpoint,
        key_share=None,
        compute_shares=None,
        parallel_map=None,
    ):
        if key_share is None and compute_shares is None:
            raise ValueError(
                "a PartyService needs a key share or a compute_shares hook"
            )
        self.endpoint = endpoint
        self.index = endpoint.index
        self._key_share = key_share
        self._compute_shares = compute_shares
        self._parallel_map = parallel_map

    def decryption_shares(self, batch: list) -> PartialDecryptionVector:
        """This party's share vector for a ciphertext batch (real values)."""
        ciphertexts = [
            c.ciphertext if isinstance(c, EncryptedNumber) else c for c in batch
        ]
        if self._compute_shares is not None:
            values = tuple(int(v) for v in self._compute_shares(ciphertexts))
            if len(values) != len(ciphertexts):
                raise ValueError(
                    f"party {self.index}'s compute hook returned "
                    f"{len(values)} shares for {len(ciphertexts)} ciphertexts"
                )
        else:
            values = tuple(
                p.value
                for p in self._key_share.partial_decrypt_batch(
                    ciphertexts, parallel_map=self._parallel_map
                )
            )
        return PartialDecryptionVector(self.index, values)

    def answer_decrypt(self, tag: str, count: int) -> PartialDecryptionVector:
        """React to one decrypt request: receive the batch, share, broadcast."""
        batch = self.endpoint.receive(tag=tag)
        if len(batch) != count:
            raise ValueError(
                f"party {self.index} received {len(batch)} ciphertexts, "
                f"expected {count}"
            )
        vector = self.decryption_shares(batch)
        self.endpoint.broadcast(vector, tag=tag)
        return vector

    def publish_shares(self, batch: list, tag: str) -> PartialDecryptionVector:
        """The request holder's half: she already has the batch in hand —
        compute her own share vector and broadcast it like everyone else."""
        vector = self.decryption_shares(batch)
        self.endpoint.broadcast(vector, tag=tag)
        return vector


class Party:
    """One organisation: her columns, her key share, her bus endpoint.

    Build with the raw local data::

        bank    = Party(X_bank, labels=y, name="bank")     # super client
        fintech = Party(X_fintech, name="fintech")

    and hand the list to :class:`~repro.federation.federation.Federation`,
    which performs the joint setup (key generation, MPC preprocessing,
    candidate splits) and binds each party to her runtime identity.  After
    binding, :attr:`features` / :attr:`labels` are strict
    :class:`~repro.federation.locality.LocalView` guards — reading them
    outside this party's scope raises
    :class:`~repro.federation.locality.LocalityError` when the federation
    enforces locality.
    """

    def __init__(
        self,
        features: np.ndarray,
        *,
        labels: np.ndarray | None = None,
        name: str | None = None,
    ):
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("party features must be a 2-D (n x d_i) array")
        self._raw_features = features
        self._raw_labels = None if labels is None else np.asarray(labels)
        if self._raw_labels is not None and len(self._raw_labels) != len(features):
            raise ValueError("features and labels disagree on sample count")
        self.name = name
        # Set by DeployedFederation when the columns are shipped to a
        # worker process and the local copy is poisoned; a flagged party
        # cannot be federated again (build a fresh one from source data).
        self._columns_remote = False
        # Assigned by Federation._bind():
        self.index: int | None = None
        self.columns: tuple[int, ...] | None = None
        self.key_share = None
        self.endpoint: PartyEndpoint | None = None
        self._features_view: LocalView | None = None
        self._labels_view: LocalView | None = None

    # -- pre-binding facts -------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self._raw_features.shape[0]

    @property
    def n_features(self) -> int:
        return self._raw_features.shape[1]

    @property
    def holds_labels(self) -> bool:
        return self._raw_labels is not None

    @property
    def is_bound(self) -> bool:
        return self.index is not None

    @property
    def is_super(self) -> bool:
        return self.holds_labels

    # -- bound identity ----------------------------------------------------

    def _bind(
        self,
        index: int,
        columns: tuple[int, ...],
        features_view: LocalView,
        labels_view: LocalView | None,
        key_share,
        endpoint: PartyEndpoint,
    ) -> None:
        self.index = index
        self.columns = columns
        self._features_view = features_view
        self._labels_view = labels_view
        self.key_share = key_share
        self.endpoint = endpoint

    @property
    def features(self):
        """This party's columns: a read-guarded view once federated."""
        if self._features_view is not None:
            return self._features_view
        return self._raw_features

    @property
    def labels(self):
        """The label vector (super client only), read-guarded once federated."""
        if self._labels_view is not None:
            return self._labels_view
        return self._raw_labels

    def local(self):
        """Scope marking a block as this party's own computation."""
        if self.index is None:
            raise RuntimeError("party is not federated yet")
        return as_party(self.index)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        bound = f" index={self.index}" if self.is_bound else " (unbound)"
        role = " super" if self.holds_labels else ""
        return (
            f"Party(d_i={self.n_features}, n={self.n_samples}{label}{bound}{role})"
        )
