"""The Party abstraction: one organisation in a vertical federation (§3.1).

A party owns exactly one client's feature columns (behind a
:class:`~repro.federation.locality.LocalView` read guard), her partial
threshold-Paillier secret key, and a :class:`PartyEndpoint` on the message
bus.  The *super client* party additionally owns the label vector.  A
party is constructed with raw local data and *bound* by the
:class:`~repro.federation.federation.Federation` during assembly, which
assigns the index, the global column ids, the key share, and the endpoint.

:class:`PartyService` is the party's *reactive* protocol half: a loop over
her endpoint that answers threshold-decryption share requests (paper §2.1
— every one of the m clients must exponentiate with her own ``d_i`` for
any plaintext to exist).  The per-party process deployment points the
service's compute hook at the owning worker process, so the share
exponentiations run under the key owner's authority, not the
orchestrator's.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.crypto.encoding import EncryptedNumber
from repro.crypto.paillier import Ciphertext
from repro.federation.locality import LocalView, as_party
from repro.network.wire import PartialDecryptionVector, Request, ShareVector

__all__ = [
    "DECRYPT_TAGS",
    "Party",
    "PartyEndpoint",
    "PartyRuntime",
    "PartyService",
]

#: Tags whose ciphertext-batch broadcasts are threshold-decryption requests:
#: a runtime that pops a list of ciphertexts under one of these tags answers
#: with her c^{d_i} share vector.  (Other ciphertext-list traffic — split
#: statistics, prediction vectors — carries its own tags and is consumed
#: without a reply.)
DECRYPT_TAGS = frozenset({"threshold-decrypt", "mpc-convert"})


@dataclass
class PartyEndpoint:
    """A party's handle on the transport: send/receive as herself.

    Thin binding of the shared :class:`~repro.network.bus.MessageBus` to
    one party index — the deployment-shaped API (each party only ever
    addresses messages *from herself* and reads *her own* inbox).
    """

    bus: Any
    index: int

    def send(self, receiver: int, payload: Any, tag: str = "") -> int:
        """Serialize and route ``payload`` to ``receiver``; returns bytes."""
        # pivotlint: disable=PL005 -- single-party transport primitive: the
        # round barrier belongs to the protocol flow driving all m parties
        # (flows.py / the reactive services), not to one party's send.
        return self.bus.send_payload(self.index, receiver, payload, tag=tag)

    def broadcast(self, payload: Any, tag: str = "") -> int:
        """Send ``payload`` to every other party; returns per-receiver bytes."""
        # pivotlint: disable=PL005 -- single-party transport primitive: the
        # caller's protocol flow owns the round barrier (see send above).
        return self.bus.broadcast_payload(self.index, payload, tag=tag)

    def receive(self, tag: str | None = None) -> Any:
        """Pop and decode this party's oldest pending message."""
        return self.bus.receive(self.index, tag=tag)

    def pending(self) -> int:
        """Messages waiting in this party's inbox.

        Goes through the bus API (not ``bus.transport`` internals): a
        remote transport must get the chance to flush in-flight frames
        before the count is read.
        """
        return self.bus.pending(self.index)


class PartyService:
    """One party's reactive protocol loop: answer decrypt-share requests.

    Driven through :meth:`PartyEndpoint.receive`: when a threshold
    decryption is in flight, :meth:`answer_decrypt` pops the ciphertext
    batch broadcast to this party, computes her decryption-share vector
    c^{d_i} mod n², and broadcasts the vector back so every client can
    combine.  Two ways to compute the shares:

    * ``key_share`` — the party's own :class:`ThresholdKeyShare`, for
      parties whose key material lives in this process (the super client,
      and every party of an in-memory federation).  ``parallel_map``
      optionally fans the full-size exponentiations out over a worker
      pool (:meth:`repro.crypto.batch.BatchCryptoEngine._map`).
    * ``compute_shares`` — a hook running the exponentiations elsewhere;
      :class:`~repro.federation.deployment.DeployedFederation` points it
      at the owning worker's ``partial_decrypt`` op, so a remote party's
      ``d_i`` is used only inside her own process.

    The orchestrator therefore stops being the sole executor of the
    protocol schedule: it can move messages, but plaintexts only exist
    once every party's service has answered with her real share vector.
    """

    def __init__(
        self,
        endpoint: PartyEndpoint,
        key_share: Any = None,
        compute_shares: Callable[[list[int]], Any] | None = None,
        parallel_map: Callable[..., Any] | None = None,
    ) -> None:
        if key_share is None and compute_shares is None:
            raise ValueError(
                "a PartyService needs a key share or a compute_shares hook"
            )
        self.endpoint = endpoint
        self.index = endpoint.index
        self._key_share = key_share
        self._compute_shares = compute_shares
        self._parallel_map = parallel_map

    def decryption_shares(self, batch: list) -> PartialDecryptionVector:
        """This party's share vector for a ciphertext batch (real values)."""
        ciphertexts = [
            c.ciphertext if isinstance(c, EncryptedNumber) else c for c in batch
        ]
        if self._compute_shares is not None:
            values = tuple(int(v) for v in self._compute_shares(ciphertexts))
            if len(values) != len(ciphertexts):
                raise ValueError(
                    f"party {self.index}'s compute hook returned "
                    f"{len(values)} shares for {len(ciphertexts)} ciphertexts"
                )
        else:
            values = tuple(
                p.value
                for p in self._key_share.partial_decrypt_batch(
                    ciphertexts, parallel_map=self._parallel_map
                )
            )
        return PartialDecryptionVector(self.index, values)

    def answer_decrypt(self, tag: str, count: int) -> PartialDecryptionVector:
        """React to one decrypt request: receive the batch, share, broadcast."""
        batch = self.endpoint.receive(tag=tag)
        if len(batch) != count:
            raise ValueError(
                f"party {self.index} received {len(batch)} ciphertexts, "
                f"expected {count}"
            )
        vector = self.decryption_shares(batch)
        # pivotlint: disable=PL005 -- reactive reply: the requesting
        # flow (record_threshold_decrypt) owns the round barrier.
        self.endpoint.broadcast(vector, tag=tag)
        return vector

    def publish_shares(self, batch: list, tag: str) -> PartialDecryptionVector:
        """The request holder's half: she already has the batch in hand —
        compute her own share vector and broadcast it like everyone else."""
        vector = self.decryption_shares(batch)
        # pivotlint: disable=PL005 -- reactive reply: the requesting
        # flow (record_threshold_decrypt) owns the round barrier.
        self.endpoint.broadcast(vector, tag=tag)
        return vector


class PartyRuntime(PartyService):
    """A party's full reactive event loop: every protocol flow she takes
    part in is a reaction to a message on her own endpoint.

    Generalises :class:`PartyService` (decrypt shares only) to the whole
    training protocol: the super client *requests* — candidate-split
    statistics, split application, MPC mask contributions, logistic batch
    sums and weight updates — and each party *reacts* with her own local
    computation over her own columns and key material.  The orchestrator
    stops being the protocol's scheduler; it is one party (the super
    client) driving her side of request/response flows that the other
    parties answer on their own event loops.

    The same object serves three deployment shapes:

    * **in-memory / asyncio / process rows** — the flows *pump* each local
      runtime (:meth:`react` once per pending request) between a request
      broadcast and the round barrier;
    * **standalone-runtime row** — ``python -m repro.federation.runtime``
      runs :meth:`react` in a blocking serve loop against a socket
      transport; the party answers whenever a frame arrives, with no
      orchestrator process involved in her computation.

    State: a store of tree-node payloads keyed by heap position (root = 1,
    children of k at 2k / 2k+1).  ``node-split`` reactions store both
    children and pop the parent; leaf entries are retained (the store is
    bounded by the tree's leaf count).  Cross-sender socket ordering is
    absorbed by :meth:`_await_node`: a handler that needs a node not yet
    stored keeps reacting to queued messages until it arrives (in-process
    delivery is FIFO per inbox, so the loop only ever spins over real
    transports).
    """

    def __init__(
        self,
        endpoint: PartyEndpoint,
        *,
        client: Any = None,
        engine: Any = None,
        field_q: int | None = None,
        key_share: Any = None,
        compute_shares: Callable[[list[int]], Any] | None = None,
        parallel_map: Callable[..., Any] | None = None,
    ) -> None:
        super().__init__(
            endpoint,
            key_share=key_share,
            compute_shares=compute_shares,
            parallel_map=parallel_map,
        )
        #: The party's PivotClient (her columns + candidate splits); the
        #: deployed topology passes the RemotePivotClient proxy so feature
        #: reads keep executing inside the owning worker process.
        self.client = client
        #: Her BatchCryptoEngine (shared in-process; her own in standalone).
        self.engine = engine
        #: MPC share modulus for mask-contribution reactions.
        self.field_q = field_q
        #: node key -> [alpha, gammas-or-None] (decoded ciphertext vectors).
        self.nodes: dict[int, list] = {}

    # -- event loop --------------------------------------------------------

    def react(self) -> tuple[int, str, object]:
        """Pop this party's oldest pending message and handle it."""
        sender, tag, payload = self.endpoint.bus.receive_tagged(self.index)
        self.handle(sender, tag, payload)
        return sender, tag, payload

    def handle(self, sender: int, tag: str, payload: Any) -> str:
        """Dispatch one received message; returns the reaction kind.

        * a :class:`~repro.network.wire.Request` → the matching ``_op_*``
          handler (unknown ops raise — a protocol error, not data);
        * a ciphertext batch under a decryption tag → broadcast this
          party's c^{d_i} share vector (the :class:`PartyService` react);
        * anything else → consumed without a reply ("sink"): other
          parties' reply broadcasts, partial-share vectors this party does
          not combine, prediction traffic.
        """
        if isinstance(payload, Request):
            handler = getattr(
                self, "_op_" + payload.op.replace("-", "_"), None
            )
            if handler is None:
                raise ValueError(
                    f"party {self.index}: unknown request op {payload.op!r}"
                )
            handler(sender, list(payload.body))
            return "request"
        if (
            tag in DECRYPT_TAGS
            and isinstance(payload, (list, tuple))
            and payload
            and isinstance(payload[0], (Ciphertext, EncryptedNumber))
        ):
            vector = self.decryption_shares(list(payload))
            # pivotlint: disable=PL005 -- reactive reply: the decrypt
            # requester's flow owns the round barrier.
            self.endpoint.broadcast(vector, tag=tag)
            return "decrypt"
        return "sink"

    # -- node store --------------------------------------------------------

    def _await_node(self, key: int) -> list:
        """The node's [alpha, gammas]; reacts to queued messages until the
        cross-sender message that creates it has been handled."""
        while key not in self.nodes:
            self.react()
        return self.nodes[key]

    def store_node(self, key: int, alpha: list, gammas: list | None) -> None:
        self.nodes[key] = [list(alpha), gammas if gammas else None]

    def store_split(self, body: list) -> None:
        """Record a node-split body: store both children, pop the parent."""
        key, _threshold, alpha_left, alpha_right, gam_left, gam_right = body
        self.store_node(2 * key, alpha_left, [list(g) for g in gam_left])
        self.store_node(2 * key + 1, alpha_right, [list(g) for g in gam_right])
        self.nodes.pop(key, None)

    # -- local computations (also called directly by the super client) -----

    def split_statistics(self, node_key: int, features: list[int]) -> list:
        """Encrypted split statistics (Eq. 7 / 9) for this party's available
        features on one node, as a single flat batched fan-out.

        Layout per (feature asc, split asc) identifier:
        ``[n_left, n_right, (left, right) per gamma vector]`` — the stride
        contract :class:`~repro.core.gain.SplitStats` unpacks.
        """
        alpha, gammas = self._await_node(node_key)
        if gammas is None:
            raise RuntimeError(
                f"party {self.index}: node {node_key} has no label vectors "
                "yet (missing node-gammas request?)"
            )
        tasks: list[tuple[list[int], list]] = []
        for feature in features:
            for split in range(self.client.n_splits(feature)):
                v_left = self.client.indicator(feature, split)
                v_right = 1 - v_left
                tasks.append((list(v_left), alpha))
                tasks.append((list(v_right), alpha))
                for gamma in gammas:
                    tasks.append((list(v_left), gamma))
                    tasks.append((list(v_right), gamma))
        return self.engine.batch_dot_products(tasks)

    def apply_split(
        self, node_key: int, feature: int, split: int, ride: int
    ) -> list:
        """Model update at the split owner (§4.1): mask [α] (and, when the
        label vectors ride with alpha, the [γ]s) by the plaintext indicator,
        broadcast both children, and store them locally.

        Returns the broadcast body ``[key, threshold, alpha_l, alpha_r,
        gam_l, gam_r]`` — the owner-is-super path uses it directly.
        """
        alpha, gammas = self._await_node(node_key)
        threshold = float(self.client.split_values[feature][split])
        v_left = self.client.indicator(feature, split)
        v_right = 1 - v_left
        alpha_left = self.engine.mask_vector(alpha, v_left)
        alpha_right = self.engine.mask_vector(alpha, v_right)
        gam_left: list = []
        gam_right: list = []
        if ride:
            gam_left = [self.engine.mask_vector(g, v_left) for g in gammas]
            gam_right = [self.engine.mask_vector(g, v_right) for g in gammas]
        body = [node_key, threshold, alpha_left, alpha_right, gam_left, gam_right]
        # pivotlint: disable=PL005 -- reactive reply: the split-apply
        # request came from the trainer's flow, which owns the barrier.
        self.endpoint.broadcast(Request("node-split", body), tag="mask-vector")
        self.store_split(body)
        return body

    # -- request handlers --------------------------------------------------

    def _op_node_state(self, sender: int, body: list) -> None:
        key, alpha, gammas = body
        self.store_node(key, alpha, [list(g) for g in gammas])

    def _op_node_gammas(self, sender: int, body: list) -> None:
        # The trainer announces node-state before node-gammas (per-sender
        # FIFO), but a provider driven directly (label-provider API, tests)
        # may publish gammas for a node never announced — store them under
        # a placeholder so the flow stays non-blocking either way.
        key, gammas = body
        node = self.nodes.setdefault(key, [None, None])
        node[1] = [list(g) for g in gammas]

    def _op_split_stats(self, sender: int, body: list) -> None:
        key, available = body
        stats = self.split_statistics(key, list(available[self.index]))
        self.endpoint.broadcast(stats, tag="split-stats")

    def _op_split_apply(self, sender: int, body: list) -> None:
        key, feature, split, ride = body
        self.apply_split(key, feature, split, ride)

    def _op_node_split(self, sender: int, body: list) -> None:
        self.store_split(body)

    def _op_convert_masks(self, sender: int, body: list) -> None:
        """Algorithm 2 lines 1-3, this party's side: sample one mask per
        value, encrypt with her engine, reply with the mask ciphertexts and
        her (-r mod q) share vector to the requesting client."""
        if self.field_q is None:
            raise RuntimeError(
                f"party {self.index}: runtime has no MPC field modulus"
            )
        masks = [secrets.randbits(bits) for bits in body]
        mask_cts = self.engine.encrypt_ciphertexts(masks)
        negated = ShareVector(tuple((-r) % self.field_q for r in masks))
        self.endpoint.send(sender, [mask_cts, negated], tag="mpc-convert")

    def _op_lr_batch_sums(self, sender: int, body: list) -> None:
        rows, weights = body
        partials = self.client.batch_sums(list(rows), list(weights))
        self.endpoint.send(sender, partials, tag="lr-partial-sum")

    def _op_lr_update(self, sender: int, body: list) -> None:
        rows, weights, loss_cts, scale = body
        updated = self.client.weight_update(
            list(rows), list(weights), list(loss_cts), scale
        )
        self.endpoint.send(sender, updated, tag="lr-weights")


class Party:
    """One organisation: her columns, her key share, her bus endpoint.

    Build with the raw local data::

        bank    = Party(X_bank, labels=y, name="bank")     # super client
        fintech = Party(X_fintech, name="fintech")

    and hand the list to :class:`~repro.federation.federation.Federation`,
    which performs the joint setup (key generation, MPC preprocessing,
    candidate splits) and binds each party to her runtime identity.  After
    binding, :attr:`features` / :attr:`labels` are strict
    :class:`~repro.federation.locality.LocalView` guards — reading them
    outside this party's scope raises
    :class:`~repro.federation.locality.LocalityError` when the federation
    enforces locality.
    """

    def __init__(
        self,
        features: np.ndarray,
        *,
        labels: np.ndarray | None = None,
        name: str | None = None,
    ) -> None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("party features must be a 2-D (n x d_i) array")
        self._raw_features = features
        self._raw_labels = None if labels is None else np.asarray(labels)
        if self._raw_labels is not None and len(self._raw_labels) != len(features):
            raise ValueError("features and labels disagree on sample count")
        self.name = name
        # Set by DeployedFederation when the columns are shipped to a
        # worker process and the local copy is poisoned; a flagged party
        # cannot be federated again (build a fresh one from source data).
        self._columns_remote = False
        # Assigned by Federation._bind():
        self.index: int | None = None
        self.columns: tuple[int, ...] | None = None
        self.key_share: Any = None
        self.endpoint: PartyEndpoint | None = None
        self._features_view: LocalView | None = None
        self._labels_view: LocalView | None = None

    # -- pre-binding facts -------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self._raw_features.shape[0]

    @property
    def n_features(self) -> int:
        return self._raw_features.shape[1]

    @property
    def holds_labels(self) -> bool:
        return self._raw_labels is not None

    @property
    def is_bound(self) -> bool:
        return self.index is not None

    @property
    def is_super(self) -> bool:
        return self.holds_labels

    # -- bound identity ----------------------------------------------------

    def _bind(
        self,
        index: int,
        columns: tuple[int, ...],
        features_view: LocalView,
        labels_view: LocalView | None,
        key_share: Any,
        endpoint: PartyEndpoint,
    ) -> None:
        self.index = index
        self.columns = columns
        self._features_view = features_view
        self._labels_view = labels_view
        self.key_share = key_share
        self.endpoint = endpoint

    @property
    def features(self) -> Any:
        """This party's columns: a read-guarded view once federated."""
        if self._features_view is not None:
            return self._features_view
        return self._raw_features

    @property
    def labels(self) -> Any:
        """The label vector (super client only), read-guarded once federated."""
        if self._labels_view is not None:
            return self._labels_view
        return self._raw_labels

    def local(self) -> Any:
        """Scope marking a block as this party's own computation."""
        if self.index is None:
            raise RuntimeError("party is not federated yet")
        return as_party(self.index)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        bound = f" index={self.index}" if self.is_bound else " (unbound)"
        role = " super" if self.holds_labels else ""
        return (
            f"Party(d_i={self.n_features}, n={self.n_samples}{label}{bound}{role})"
        )
