"""Dataset substrates: synthetic generators, simulated paper datasets, and
vertical partitioning (paper §8.1, DESIGN.md §4.3-4.4)."""

from repro.data.datasets import (
    PAPER_DATASETS,
    Dataset,
    load_appliances_energy,
    load_bank_marketing,
    load_credit_card,
)
from repro.data.partition import VerticalPartition, vertical_partition
from repro.data.synthetic import make_classification, make_regression

__all__ = [
    "Dataset",
    "PAPER_DATASETS",
    "VerticalPartition",
    "load_appliances_energy",
    "load_bank_marketing",
    "load_credit_card",
    "make_classification",
    "make_regression",
    "vertical_partition",
]
