"""Vertical partitioning of features across the m clients (paper §3.1, §8.1).

The paper: "we vary the number of samples (n) and the number of total
features (d) to generate datasets and then equally split these datasets
w.r.t. features into m partitions, which are held by m clients"; labels are
held by exactly one client, the super client.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VerticalPartition", "vertical_partition"]


@dataclass(frozen=True)
class VerticalPartition:
    """The distributed view of a dataset: who holds which columns + labels."""

    columns_per_client: tuple[tuple[int, ...], ...]  # global column ids
    local_features: tuple[np.ndarray, ...]  # per-client feature matrices
    labels: np.ndarray  # held by the super client only
    super_client: int
    task: str

    @property
    def n_clients(self) -> int:
        return len(self.local_features)

    @property
    def n_samples(self) -> int:
        return self.local_features[0].shape[0]

    def global_feature_of(self, client: int, local_index: int) -> int:
        """Map a client-local feature index back to the global column id."""
        return self.columns_per_client[client][local_index]


def vertical_partition(
    features: np.ndarray,
    labels: np.ndarray,
    n_clients: int,
    task: str = "classification",
    super_client: int = 0,
    shuffle_columns: bool = False,
    seed: int | None = None,
) -> VerticalPartition:
    """Split columns of ``features`` evenly over ``n_clients`` clients.

    Column blocks are contiguous by default (the paper's equal split); with
    ``shuffle_columns`` the assignment is randomised first.  Every client
    receives at least one column, so ``n_clients`` must not exceed d.
    """
    n_samples, n_features = features.shape
    if labels.shape[0] != n_samples:
        raise ValueError("features and labels disagree on sample count")
    if n_clients < 2:
        raise ValueError("vertical FL needs at least 2 clients")
    if n_clients > n_features:
        raise ValueError(
            f"cannot give {n_clients} clients at least one of {n_features} features"
        )
    if not 0 <= super_client < n_clients:
        raise ValueError("super client index out of range")

    order = np.arange(n_features)
    if shuffle_columns:
        order = np.random.default_rng(seed).permutation(n_features)
    blocks = np.array_split(order, n_clients)
    columns = tuple(tuple(int(c) for c in block) for block in blocks)
    local = tuple(np.ascontiguousarray(features[:, block]) for block in blocks)
    return VerticalPartition(
        columns_per_client=columns,
        local_features=local,
        labels=np.asarray(labels),
        super_client=super_client,
        task=task,
    )
