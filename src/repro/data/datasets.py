"""Simulated stand-ins for the paper's three real datasets (§8.1).

The paper evaluates accuracy on three UCI datasets:

* **credit card** default-of-credit-card-clients, 30000 × 25 (classification),
* **bank marketing**, 4521 × 17 (classification),
* **appliances energy** prediction, 19735 × 29 (regression).

No network access is available in this environment, so each loader
*simulates* its dataset: same shape, same feature-type mix, comparable
class balance, and a latent-factor label process that gives tree models a
realistic amount of signal (DESIGN.md §4.3).  The reproduction claim for
Table 3 is about the *gap* between Pivot and the non-private baselines on
identical data, which the simulation preserves: both sides consume exactly
the same arrays.
"""

from __future__ import annotations

# pivotlint: disable-file=PL001 -- Dataset is the centralized pre-federation
# container (loader output): the party boundary does not exist until
# VerticalPartition splits its columns, so there is no owner scope to hold.

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Dataset",
    "load_credit_card",
    "load_bank_marketing",
    "load_appliances_energy",
    "PAPER_DATASETS",
]


@dataclass(frozen=True)
class Dataset:
    """A named supervised-learning dataset."""

    name: str
    features: np.ndarray
    labels: np.ndarray
    task: str  # "classification" | "regression"
    feature_names: tuple[str, ...]

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    def subsample(self, n_samples: int, seed: int | None = None) -> "Dataset":
        """A random subset (used to keep secure-protocol benches tractable)."""
        if n_samples >= self.n_samples:
            return self
        rng = np.random.default_rng(seed)
        index = rng.choice(self.n_samples, size=n_samples, replace=False)
        return Dataset(
            self.name,
            self.features[index],
            self.labels[index],
            self.task,
            self.feature_names,
        )

    def train_test_split(
        self, test_fraction: float = 0.2, seed: int | None = None
    ) -> tuple["Dataset", "Dataset"]:
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.n_samples)
        n_test = int(self.n_samples * test_fraction)
        test_idx, train_idx = order[:n_test], order[n_test:]
        make = lambda idx, tag: Dataset(  # noqa: E731 - local helper
            f"{self.name}-{tag}",
            self.features[idx],
            self.labels[idx],
            self.task,
            self.feature_names,
        )
        return make(train_idx, "train"), make(test_idx, "test")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def load_credit_card(n_samples: int = 30000, seed: int = 7) -> Dataset:
    """Simulated credit-card default data (UCI 30000 × 23 features + label).

    Latent "financial stress" drives repayment-status features, bill/payment
    amounts, and the default label (~22% positive, as in the real data).
    """
    rng = np.random.default_rng(seed)
    stress = rng.normal(size=n_samples)  # latent risk factor

    limit_bal = np.exp(rng.normal(11.5, 0.8, n_samples) - 0.3 * stress)
    sex = rng.integers(1, 3, n_samples).astype(float)
    education = rng.integers(1, 5, n_samples).astype(float)
    marriage = rng.integers(1, 4, n_samples).astype(float)
    age = rng.normal(35, 9, n_samples).clip(21, 75)

    pay_status = []
    for month in range(6):
        drift = 0.9 * stress + rng.normal(scale=0.6, size=n_samples)
        pay_status.append(np.round(drift).clip(-2, 8))
    bill_amt = [
        limit_bal * _sigmoid(0.5 * stress + rng.normal(scale=0.7, size=n_samples))
        for _ in range(6)
    ]
    pay_amt = [
        bill / (1.5 + np.exp(0.8 * stress + rng.normal(scale=0.5, size=n_samples)))
        for bill in bill_amt
    ]

    logit = (
        -1.35
        + 1.1 * stress
        + 0.35 * pay_status[0]
        + 0.2 * pay_status[1]
        - 0.3 * np.log1p(limit_bal) / 10
        + 0.15 * (education - 2)
    )
    labels = (rng.uniform(size=n_samples) < _sigmoid(logit)).astype(np.int64)

    columns = (
        [limit_bal, sex, education, marriage, age]
        + pay_status
        + bill_amt
        + pay_amt
    )
    names = (
        ["limit_bal", "sex", "education", "marriage", "age"]
        + [f"pay_{i}" for i in range(6)]
        + [f"bill_amt{i + 1}" for i in range(6)]
        + [f"pay_amt{i + 1}" for i in range(6)]
    )
    features = np.column_stack(columns)
    return Dataset("credit_card", features, labels, "classification", tuple(names))


def load_bank_marketing(n_samples: int = 4521, seed: int = 11) -> Dataset:
    """Simulated bank-marketing data (UCI 4521 × 16 features + label).

    Mixed numeric/ordinal features; term-deposit subscription label with the
    real data's ~11.5% positive rate, driven mainly by call duration and
    previous-campaign outcome (the dominant signals in the real dataset).
    """
    rng = np.random.default_rng(seed)
    age = rng.normal(41, 11, n_samples).clip(18, 95)
    job = rng.integers(0, 12, n_samples).astype(float)
    marital = rng.integers(0, 3, n_samples).astype(float)
    education = rng.integers(0, 4, n_samples).astype(float)
    default = (rng.uniform(size=n_samples) < 0.018).astype(float)
    balance = rng.normal(1400, 3000, n_samples)
    housing = (rng.uniform(size=n_samples) < 0.56).astype(float)
    loan = (rng.uniform(size=n_samples) < 0.16).astype(float)
    contact = rng.integers(0, 3, n_samples).astype(float)
    day = rng.integers(1, 32, n_samples).astype(float)
    month = rng.integers(1, 13, n_samples).astype(float)
    duration = np.exp(rng.normal(5.2, 0.9, n_samples))  # seconds, log-normal
    campaign = rng.geometric(0.35, n_samples).clip(1, 50).astype(float)
    pdays = np.where(rng.uniform(size=n_samples) < 0.75, -1.0, rng.integers(1, 400, n_samples))
    previous = np.where(pdays < 0, 0.0, rng.geometric(0.4, n_samples)).astype(float)
    poutcome = np.where(previous > 0, rng.integers(1, 4, n_samples), 0.0).astype(float)

    logit = (
        -2.75
        + 1.1 * (np.log(duration) - 5.2)
        + 0.9 * (poutcome == 3)
        + 0.3 * (balance > 1500)
        - 0.25 * loan
        - 0.2 * housing
        + 0.15 * (contact == 0)
    )
    labels = (rng.uniform(size=n_samples) < _sigmoid(logit)).astype(np.int64)

    features = np.column_stack(
        [
            age, job, marital, education, default, balance, housing, loan,
            contact, day, month, duration, campaign, pdays, previous, poutcome,
        ]
    )
    names = (
        "age", "job", "marital", "education", "default", "balance", "housing",
        "loan", "contact", "day", "month", "duration", "campaign", "pdays",
        "previous", "poutcome",
    )
    return Dataset("bank_marketing", features, labels, "classification", names)


def load_appliances_energy(n_samples: int = 19735, seed: int = 13) -> Dataset:
    """Simulated appliances-energy data (UCI 19735 × 28 features, regression).

    Indoor temperature/humidity sensor pairs plus weather covariates drive
    an appliance energy-use target with diurnal structure, mimicking the
    real dataset's sensor layout (T1..T9, RH_1..RH_9, weather).
    """
    rng = np.random.default_rng(seed)
    hour = rng.uniform(0, 24, n_samples)
    occupancy = _sigmoid(np.sin((hour - 8) / 24 * 2 * np.pi) * 2 + rng.normal(scale=0.5, size=n_samples))
    outdoor_t = 6 + 8 * np.sin((hour - 14) / 24 * 2 * np.pi) + rng.normal(scale=2.5, size=n_samples)

    temps, hums = [], []
    for room in range(9):
        base = 20 + 0.3 * room
        temps.append(base + 0.35 * outdoor_t / 6 + 1.5 * occupancy + rng.normal(scale=0.8, size=n_samples))
        hums.append(40 + 5 * occupancy - 0.4 * outdoor_t + rng.normal(scale=3.0, size=n_samples))

    press = rng.normal(755, 5, n_samples)
    wind = rng.gamma(2.0, 2.0, n_samples)
    visibility = rng.normal(38, 11, n_samples).clip(1, 66)
    tdewpoint = outdoor_t - rng.gamma(2.0, 1.5, n_samples)
    rv1 = rng.uniform(0, 50, n_samples)
    rv2 = rv1.copy()  # the real dataset duplicates this random column
    lights = (rng.uniform(size=n_samples) < 0.23) * rng.integers(10, 70, n_samples)

    target = (
        60
        + 180 * occupancy
        + 12 * (temps[1] - 20)
        - 1.8 * (np.stack(hums).mean(axis=0) - 40)
        + 0.8 * lights
        + rng.normal(scale=25, size=n_samples)
    ).clip(10, 1080)

    columns = [lights.astype(float)]
    names = ["lights"]
    for i in range(9):
        columns += [temps[i], hums[i]]
        names += [f"T{i + 1}", f"RH_{i + 1}"]
    columns += [outdoor_t, press, wind, visibility, tdewpoint, rv1, rv2, hour]
    names += ["T_out", "press", "windspeed", "visibility", "tdewpoint", "rv1", "rv2", "hour"]

    features = np.column_stack(columns)
    return Dataset(
        "appliances_energy", features, target.astype(np.float64), "regression",
        tuple(names),
    )


#: name -> loader, in the order Table 3 reports them.
PAPER_DATASETS = {
    "bank_marketing": load_bank_marketing,
    "credit_card": load_credit_card,
    "appliances_energy": load_appliances_energy,
}
