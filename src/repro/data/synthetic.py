"""Synthetic dataset generators (paper §8.1 "Datasets").

The paper generates its efficiency-evaluation datasets with sklearn's
``make_classification``; sklearn is not available offline, so this module
implements equivalent generators from scratch (DESIGN.md §4.4):

* :func:`make_classification` — Gaussian class clusters on informative
  dimensions plus noise dimensions, with controllable separation; for
  the paper's default setting the number of classes is 4.
* :func:`make_regression` — a random linear model with nonlinear bumps and
  Gaussian noise.

Both return float64 arrays; labels are int64 class ids or float64 targets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_classification", "make_regression"]


def make_classification(
    n_samples: int,
    n_features: int,
    n_classes: int = 4,
    n_informative: int | None = None,
    class_sep: float = 1.5,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian-cluster classification data.

    Each class draws its informative coordinates from an isotropic Gaussian
    around a class centroid sampled on a hypercube of half-width
    ``class_sep``; remaining features are pure noise.  A random rotation of
    the informative block spreads signal across those columns so no single
    feature is trivially decisive.
    """
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    if n_features < 1:
        raise ValueError("need at least one feature")
    rng = np.random.default_rng(seed)
    if n_informative is None:
        n_informative = max(2, n_features // 2)
    n_informative = min(n_informative, n_features)

    centroids = rng.uniform(-class_sep, class_sep, size=(n_classes, n_informative))
    # Balanced labels with the remainder distributed round-robin.
    labels = np.arange(n_samples) % n_classes
    rng.shuffle(labels)

    informative = centroids[labels] + rng.normal(size=(n_samples, n_informative))
    rotation = np.linalg.qr(rng.normal(size=(n_informative, n_informative)))[0]
    informative = informative @ rotation

    noise = rng.normal(size=(n_samples, n_features - n_informative))
    features = np.hstack([informative, noise])
    # Shuffle columns so informative features are not clustered up front.
    order = rng.permutation(n_features)
    return features[:, order], labels.astype(np.int64)


def make_regression(
    n_samples: int,
    n_features: int,
    n_informative: int | None = None,
    noise: float = 0.1,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Regression data: linear signal + a nonlinear bump, noise features.

    Targets are scaled to roughly [-1, 1], which matches the fixed-point
    normalisation the secure protocols apply to regression labels.
    """
    if n_features < 1:
        raise ValueError("need at least one feature")
    rng = np.random.default_rng(seed)
    if n_informative is None:
        n_informative = max(2, n_features // 2)
    n_informative = min(n_informative, n_features)

    features = rng.normal(size=(n_samples, n_features))
    weights = rng.uniform(-1, 1, size=n_informative)
    signal = features[:, :n_informative] @ weights
    # A mild nonlinearity keeps trees strictly better than a linear fit.
    signal = signal + 0.5 * np.sin(2 * features[:, 0])
    targets = signal + rng.normal(scale=noise, size=n_samples)
    scale = np.max(np.abs(targets)) or 1.0
    targets = targets / scale

    order = rng.permutation(n_features)
    return features[:, order], targets.astype(np.float64)
