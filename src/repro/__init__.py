"""repro — a from-scratch reproduction of *Pivot: Privacy Preserving
Vertical Federated Learning for Tree-based Models* (VLDB 2020).

Public API highlights:

* :class:`repro.core.PivotContext` / :class:`repro.core.PivotConfig` — set
  up an m-client deployment over a vertical partition.
* :class:`repro.core.PivotDecisionTree` — basic/enhanced protocol training.
* :func:`repro.core.predict_basic` / :func:`repro.core.predict_enhanced` —
  distributed prediction.
* :class:`repro.core.PivotRandomForest` / :class:`repro.core.PivotGBDT` —
  the ensemble extensions.
* :mod:`repro.tree` — the plaintext CART/RF/GBDT baselines.
* :mod:`repro.baselines` — SPDZ-DT and NPD-DT.
* :mod:`repro.data` — synthetic generators and simulated paper datasets.
"""

from repro.core import (
    DPConfig,
    PivotConfig,
    PivotContext,
    PivotDecisionTree,
    PivotGBDT,
    PivotLogisticRegression,
    PivotRandomForest,
    predict_basic,
    predict_batch,
    predict_enhanced,
)

__version__ = "1.0.0"

__all__ = [
    "DPConfig",
    "PivotConfig",
    "PivotContext",
    "PivotDecisionTree",
    "PivotGBDT",
    "PivotLogisticRegression",
    "PivotRandomForest",
    "predict_basic",
    "predict_batch",
    "predict_enhanced",
    "__version__",
]
