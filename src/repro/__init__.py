"""repro — a from-scratch reproduction of *Pivot: Privacy Preserving
Vertical Federated Learning for Tree-based Models* (VLDB 2020).

Primary API — the party-scoped federation facade (:mod:`repro.federation`):

* :class:`repro.Party` / :class:`repro.Federation` — one object per
  organisation (her columns, her partial secret key, her bus endpoint; the
  super client additionally holds the labels) and the orchestrator that
  runs the joint setup.
* sklearn-style estimators: :class:`repro.PivotClassifier`,
  :class:`repro.PivotRegressor`, :class:`repro.PivotForestClassifier`,
  :class:`repro.PivotGBDTClassifier`, :class:`repro.PivotGBDTRegressor`,
  :class:`repro.PivotLogisticClassifier` — each with ``fit(parties)`` /
  ``predict(party_slices)`` / ``score``, a ``protocol=`` switch
  (``basic``/``enhanced``) and uniform ``dp=``/``malicious=`` hooks.

Deprecated flat API (kept as warning shims): ``PivotDecisionTree``,
``PivotRandomForest``, ``PivotGBDT``, ``PivotLogisticRegression``,
``predict_basic`` / ``predict_enhanced`` / ``predict_batch``.

Lower layers: :class:`repro.PivotContext` / :class:`repro.PivotConfig`
(shared runtime), :mod:`repro.tree` (plaintext CART/RF/GBDT baselines),
:mod:`repro.baselines` (SPDZ-DT, NPD-DT), :mod:`repro.data` (synthetic
generators and simulated paper datasets).
"""

from repro.core import (
    DPConfig,
    PivotConfig,
    PivotContext,
    PivotDecisionTree,
    PivotGBDT,
    PivotLogisticRegression,
    PivotRandomForest,
    predict_basic,
    predict_batch,
    predict_enhanced,
)
from repro.federation import (
    Federation,
    LocalityError,
    LocalView,
    Party,
    PivotClassifier,
    PivotForestClassifier,
    PivotGBDTClassifier,
    PivotGBDTRegressor,
    PivotLogisticClassifier,
    PivotRegressor,
    as_party,
)

__version__ = "2.0.0"

__all__ = [
    "DPConfig",
    "Federation",
    "LocalView",
    "LocalityError",
    "Party",
    "PivotClassifier",
    "PivotConfig",
    "PivotContext",
    "PivotDecisionTree",
    "PivotForestClassifier",
    "PivotGBDT",
    "PivotGBDTClassifier",
    "PivotGBDTRegressor",
    "PivotLogisticClassifier",
    "PivotLogisticRegression",
    "PivotRandomForest",
    "PivotRegressor",
    "as_party",
    "predict_basic",
    "predict_batch",
    "predict_enhanced",
    "__version__",
]
