"""Fixed-point secure arithmetic: division, exponential, softmax (§2.2, §7.2).

The paper uses SPDZ's fixed-point support: "other primitives including
secure division and secure exponential can be approximated, which are also
supported in SPDZ [18, 28, 5]".  This module implements those primitives
the way MP-SPDZ does:

* ``FixedPointOps.div``  — Goldschmidt iteration with the AppRcr initial
  approximation and Norm (MSB normalisation via bit decomposition),
  following Catrina–Saxena [18].
* ``FixedPointOps.exp``  — e^x via 2^(x·log2 e): the integer part is an
  oblivious power-of-two product over its bits, the fractional part a
  Taylor polynomial, the input clamped to a public range.
* ``FixedPointOps.softmax`` — secure softmax (secure exp + division), used
  by GBDT classification (§7.2).

Values are field elements representing v·2^F in two's-complement; K bounds
the total bit length.  Products (2K bits) stay below the field modulus with
κ bits of statistical masking headroom.
"""

from __future__ import annotations

import math

from repro.mpc import comparison
from repro.mpc.engine import MPCEngine
from repro.mpc.sharing import SharedValue

__all__ = ["FixedPointOps", "DEFAULT_K", "DEFAULT_F"]

DEFAULT_K = 40
DEFAULT_F = 16

#: Clamp range for the secure exponential (exp(±6) covers softmax needs).
EXP_CLAMP = 6.0
#: Shift making the base-2 exponent positive: x·log2(e) + EXP_SHIFT >= 0.
EXP_SHIFT = 9

# Taylor coefficients of 2^x = sum (x ln 2)^j / j! on [0, 1], degree 6
# (max error ~1.5e-5, below the 2^-16 fixed-point resolution).
_EXP2_COEFFS = [math.log(2) ** j / math.factorial(j) for j in range(7)]

# Degree-6 least-squares fit of log2(x) on [0.5, 1] (max error ~5e-6),
# ascending powers; used by the secure logarithm (DP Laplace sampling §9.2).
_LOG2_COEFFS = [
    -4.0283996614, 12.1322901677, -21.0584178804, 25.7539064323,
    -19.751145125, 8.5408663253, -1.5891038898,
]


class FixedPointOps:
    """Secure fixed-point calculator bound to one MPC engine."""

    def __init__(self, engine: MPCEngine, k: int = DEFAULT_K, f: int = DEFAULT_F):
        if 2 * k + engine.kappa + 1 >= engine.field.q.bit_length():
            raise ValueError(
                f"fixed-point K={k} too large for field "
                f"(needs 2K + kappa + 1 < {engine.field.q.bit_length()})"
            )
        self.engine = engine
        self.k = k
        self.f = f
        self.theta = max(1, math.ceil(math.log2(k / 3.5)))  # Goldschmidt iters

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode(self, value: float | int) -> int:
        """Public real value -> field representative of v·2^F."""
        scaled = round(value * (1 << self.f))
        if abs(scaled) >= 1 << (self.k - 1):
            # Keep the value out of the message: encode() runs on secret
            # inputs and exception text reaches logs/tracebacks.
            raise OverflowError(f"value outside the K={self.k} fixed-point range")
        return scaled % self.engine.field.q

    def decode(self, element: int) -> float:
        return self.engine.field.to_signed(element) / (1 << self.f)

    def share(self, value: float | int) -> SharedValue:
        return self.engine.share_public(self.encode(value))

    def open(self, value: SharedValue) -> float:
        return self.decode(self.engine.open(value))

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def mul(self, a: SharedValue, b: SharedValue) -> SharedValue:
        """Fixed-point product: field multiply then rescale by 2^F."""
        return comparison.trunc_pr(self.engine, self.engine.mul(a, b), 2 * self.k, self.f)

    def mul_public(self, a: SharedValue, scalar: float) -> SharedValue:
        return comparison.trunc_pr(
            self.engine, a * self.encode(scalar), 2 * self.k, self.f
        )

    def square(self, a: SharedValue) -> SharedValue:
        return self.mul(a, a)

    # ------------------------------------------------------------------
    # division (Goldschmidt, MP-SPDZ FPDiv)
    # ------------------------------------------------------------------

    def norm(self, b: SharedValue) -> tuple[SharedValue, SharedValue]:
        """Normalise b in (0, 2^(K-1)) to c = b·v in [2^(K-1), 2^K).

        Returns (⟨c⟩, ⟨v⟩) with v the power of two 2^(K-1-msb(b)).
        For b = 0 both outputs are ⟨0⟩ (callers mask invalid divisions).
        """
        engine = self.engine
        bits = comparison.bit_dec(engine, b, self.k)
        prefix = comparison.prefix_or_msb_first(engine, list(reversed(bits)))
        v = engine.share_public(0)
        previous = engine.share_public(0)
        for msb_index, p in enumerate(prefix):
            z = p - previous  # 1 exactly at the most significant set bit
            previous = p
            i = self.k - 1 - msb_index  # bit position
            v = v + z * (1 << (self.k - 1 - i))
        c = engine.mul(b, v)
        return c, v

    def app_rcr(self, b: SharedValue) -> SharedValue:
        """Approximate reciprocal w ≈ 2^(2F)/b (relative error < 0.08)."""
        engine = self.engine
        alpha = int(2.9142 * (1 << self.k))
        c, v = self.norm(b)
        d = engine.add_public(c * (-2), alpha)
        w = engine.mul(d, v)
        return comparison.trunc_pr(engine, w, 2 * self.k, 2 * (self.k - self.f))

    def div(self, a: SharedValue, b: SharedValue) -> SharedValue:
        """⟨a / b⟩ for b > 0 (Goldschmidt with theta iterations).

        b must be positive and nonzero for a meaningful result; b = 0
        yields ⟨0⟩ (degenerate-split masking relies on this).
        """
        engine = self.engine
        two_k = 2 * self.k
        alpha = 1 << (2 * self.f)
        w = self.app_rcr(b)
        x = engine.add_public(-engine.mul(b, w), alpha)  # alpha*(1 - b*w/2^2F)
        y = engine.mul(a, w)
        y = comparison.trunc_pr(engine, y, two_k, self.f)
        for _ in range(self.theta):
            y = engine.mul(y, engine.add_public(x, alpha))
            x = engine.mul(x, x)
            y = comparison.trunc_pr(engine, y, two_k, 2 * self.f)
            x = comparison.trunc_pr(engine, x, two_k, 2 * self.f)
        y = engine.mul(y, engine.add_public(x, alpha))
        return comparison.trunc_pr(engine, y, two_k, 2 * self.f)

    def reciprocal(self, b: SharedValue) -> SharedValue:
        return self.div(self.share(1), b)

    # ------------------------------------------------------------------
    # exponential / softmax
    # ------------------------------------------------------------------

    def clamp(self, a: SharedValue, low: float, high: float) -> SharedValue:
        engine = self.engine
        lo = self.share(low)
        hi = self.share(high)
        below = comparison.lt(engine, a, lo, self.k)
        a = comparison.select(engine, below, lo, a)
        above = comparison.gt(engine, a, hi, self.k)
        return comparison.select(engine, above, hi, a)

    def exp(self, a: SharedValue) -> SharedValue:
        """⟨e^a⟩ with a clamped to [-EXP_CLAMP, EXP_CLAMP]."""
        engine = self.engine
        a = self.clamp(a, -EXP_CLAMP, EXP_CLAMP)
        # y = a*log2(e) + SHIFT in [0, ~2*SHIFT); exp(a) = 2^(y - SHIFT).
        y = self.mul_public(a, math.log2(math.e))
        y = y + self.share(EXP_SHIFT)
        integer = comparison.trunc(engine, y, self.k, self.f)
        fraction = y - integer * (1 << self.f)
        # 2^integer: oblivious product over the 5 bits of the integer part.
        bits = comparison.bit_dec(engine, integer, 5)
        power = engine.share_public(1)
        for j, bit in enumerate(bits):
            factor = engine.add_public(bit * ((1 << (1 << j)) - 1), 1)
            power = engine.mul(power, factor)
        # 2^fraction via the Taylor polynomial (Horner).
        acc = self.share(_EXP2_COEFFS[-1])
        for coeff in reversed(_EXP2_COEFFS[:-1]):
            acc = self.mul(acc, fraction) + self.share(coeff)
        # Combine and shift back: (2^int * 2^frac) / 2^SHIFT.
        combined = engine.mul(power, acc)  # scale F (power is scale 0)
        return comparison.trunc_pr(engine, combined, 2 * self.k, EXP_SHIFT)

    def softmax(self, scores: list[SharedValue]) -> list[SharedValue]:
        """Secure softmax over shared scores (§7.2 GBDT classification)."""
        exps = [self.exp(s) for s in scores]
        denominator = self.engine.sum_values(exps)
        return [self.div(e, denominator) for e in exps]

    # ------------------------------------------------------------------
    # logarithm (needed by the secure Laplace sampler, §9.2 Algorithm 5)
    # ------------------------------------------------------------------

    def log2(self, a: SharedValue) -> SharedValue:
        """⟨log2 a⟩ for a > 0: normalise to [0.5, 1), polynomial, re-shift.

        Uses the same bit-decomposition machinery as Norm: with p = msb(a)
        (of the raw fixed-point integer), a = c_norm · 2^(p+1-F) for
        c_norm in [0.5, 1), so log2 a = log2(c_norm) + p + 1 - F.
        """
        engine = self.engine
        bits = comparison.bit_dec(engine, a, self.k)
        prefix = comparison.prefix_or_msb_first(engine, list(reversed(bits)))
        v = engine.share_public(0)
        msb = engine.share_public(0)
        previous = engine.share_public(0)
        for msb_index, pref in enumerate(prefix):
            z = pref - previous
            previous = pref
            position = self.k - 1 - msb_index
            v = v + z * (1 << (self.k - 1 - position))
            msb = msb + z * position
        c = engine.mul(a, v)  # in [2^(K-1), 2^K)
        c_norm = comparison.trunc_pr(engine, c, self.k + 1, self.k - self.f)
        acc = self.share(_LOG2_COEFFS[-1])
        for coeff in reversed(_LOG2_COEFFS[:-1]):
            acc = self.mul(acc, c_norm) + self.share(coeff)
        shift = msb * (1 << self.f) + self.share(1 - self.f)
        return acc + shift

    def ln(self, a: SharedValue) -> SharedValue:
        """⟨ln a⟩ = ln(2) · ⟨log2 a⟩."""
        return self.mul_public(self.log2(a), math.log(2.0))

    def uniform_fraction(self) -> SharedValue:
        """⟨U⟩ uniform on the 2^-F grid of [0, 1) from dealer random bits."""
        bits = [self.engine.dealer.random_bit() for _ in range(self.f)]
        total = self.engine.share_public(0)
        for i, bit in enumerate(bits):
            total = total + bit * (1 << i)
        return total

    # ------------------------------------------------------------------
    # comparisons at this format's bit width
    # ------------------------------------------------------------------

    def lt(self, a: SharedValue, b: SharedValue) -> SharedValue:
        return comparison.lt(self.engine, a, b, self.k)

    def gt(self, a: SharedValue, b: SharedValue) -> SharedValue:
        return comparison.gt(self.engine, a, b, self.k)

    def ltz(self, a: SharedValue) -> SharedValue:
        return comparison.ltz(self.engine, a, self.k)

    def eqz(self, a: SharedValue) -> SharedValue:
        return comparison.eqz(self.engine, a, self.k)

    def argmax(
        self, values: list[SharedValue]
    ) -> tuple[SharedValue, SharedValue, list[SharedValue]]:
        return comparison.argmax(self.engine, values, self.k)
