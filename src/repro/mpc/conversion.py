"""Conversions between TPHE ciphertexts and secret shares (Algorithm 2, §5.2).

``cipher_to_share`` implements the paper's Algorithm 2: every client adds an
encrypted random mask to the ciphertext, the masked value is jointly
decrypted, and each client keeps (the negation of) her mask as her share —
client 1 additionally adds the decrypted masked value.  The result is an
additively shared value in Z_q.

``share_to_cipher`` implements the reverse conversion used by the enhanced
protocol (§5.2): every client encrypts her share and the shares are summed
homomorphically.  The resulting plaintext equals the shared value plus a
multiple of q < m·q, which :func:`decrypt_shared_cipher` strips after joint
decryption (the Paillier plaintext space is orders of magnitude larger than
q, so the wrap never aliases).

Fixed-point handling: a ciphertext with exponent -S converts to a shared
value at the MPC scale 2^F.  If S > F the converted value is securely
truncated by S - F bits (probabilistic truncation); if S < F the ciphertext
is first losslessly rescaled.
"""

from __future__ import annotations

import secrets

from repro.crypto.encoding import EncryptedNumber
from repro.crypto.threshold import ThresholdPaillier, combine_partial_vectors
from repro.mpc import comparison
from repro.mpc.advanced import FixedPointOps
from repro.mpc.sharing import SharedValue
from repro.network.bus import MessageBus
from repro.network.flows import record_threshold_decrypt

__all__ = [
    "cipher_to_share",
    "ciphers_to_shares",
    "share_to_cipher",
    "decrypt_shared_cipher",
    "ConversionCounters",
]


class ConversionCounters:
    """Counts conversions and threshold decryptions (Table 2's Cd)."""

    def __init__(self) -> None:
        self.to_shares = 0
        self.to_cipher = 0
        self.threshold_decryptions = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "to_shares": self.to_shares,
            "to_cipher": self.to_cipher,
            "threshold_decryptions": self.threshold_decryptions,
        }


def cipher_to_share(
    value: EncryptedNumber,
    threshold: ThresholdPaillier,
    fixed: FixedPointOps,
    counters: ConversionCounters | None = None,
    bus: MessageBus | None = None,
    services: list | None = None,
    runtimes: list | None = None,
) -> SharedValue:
    """Algorithm 2: convert one ciphertext into a secretly shared value.

    Ciphertexts produced by :func:`share_to_cipher` (whose plaintext may
    exceed q by a multiple of q) are handled transparently: building the
    shares mod q strips the wrap before any secure truncation runs.
    """
    return ciphers_to_shares(
        [value], threshold, fixed, counters, bus=bus, services=services,
        runtimes=runtimes,
    )[0]


def ciphers_to_shares(
    values: list[EncryptedNumber],
    threshold: ThresholdPaillier,
    fixed: FixedPointOps,
    counters: ConversionCounters | None = None,
    batch_engine=None,
    bus: MessageBus | None = None,
    services: list | None = None,
    runtimes: list | None = None,
) -> list[SharedValue]:
    """Batch Algorithm 2 (the m decryption rounds are batched in practice).

    All values are masked first, then the masked ciphertexts go through one
    batched threshold decryption; a
    :class:`~repro.crypto.batch.BatchCryptoEngine` may be supplied so the
    mask encryptions draw from its obfuscator pool.  Op counts and results
    match the value-at-a-time loop exactly.

    With ``runtimes`` (the per-party
    :class:`~repro.federation.party.PartyRuntime` list) the mask phase is
    *reactive*: client 1 broadcasts a ``convert-masks`` request with the
    per-value mask widths, and every other party samples her own masks,
    encrypts them with *her* engine, and replies with the mask ciphertexts
    plus her (-r mod q) share vector.  Her sampling and encryption run
    wherever her runtime lives — in this process when she is local, in her
    own standalone process otherwise.  (The share vectors travel to the
    engine host because the MPC layer itself is centrally simulated — the
    same boundary as :meth:`MPCEngine.input_many` everywhere else.)
    Without runtimes the legacy central path samples all m masks here,
    with the same op counts and bus rounds.

    With ``services`` (the per-party
    :class:`~repro.federation.party.PartyService` list) and
    ``decrypt_mode="combine"``, the masked plaintexts are reconstructed
    from the m real share vectors the flow moved — each party's c^{d_i}
    exponentiations run under her own authority, and the conversion works
    even after a deployment scrubbed the dealer key (or no dealer ever
    existed, with distributed keygen).
    """
    if not values:
        return []
    engine = fixed.engine
    q = engine.field.q
    m = threshold.n_parties
    pk = threshold.public_key
    reactive = bus is not None and runtimes is not None
    adjusted: list[EncryptedNumber] = []
    extras: list[int] = []
    bits_list: list[int] = []
    for value in values:
        target_exponent = -fixed.f
        if value.exponent > target_exponent:
            value = value.decrease_exponent_to(target_exponent)
        adjusted.append(value)
        extra = target_exponent - value.exponent  # >= 0
        extras.append(extra)
        bits_list.append(fixed.k + extra + engine.kappa)
    masked_cts = []
    if reactive:
        from repro.network.flows import broadcast_request, collect_replies

        # Client 1 requests mask contributions; every other party reacts
        # with [her mask ciphertexts, her (-r mod q) share vector].
        broadcast_request(
            bus, 0, "convert-masks", bits_list, tag="mpc-convert",
            runtimes=runtimes,
        )
        own_masks = [secrets.randbits(bits) for bits in bits_list]
        if batch_engine is not None:
            own_cts = batch_engine.encrypt_ciphertexts(own_masks)
        else:
            own_cts = [pk.encrypt(r) for r in own_masks]
        replies = collect_replies(bus, 0, range(1, m))
        for j, value in enumerate(adjusted):
            masked_ct = value.ciphertext + own_cts[j]
            for party in range(1, m):
                masked_ct = masked_ct + replies[party][0][j]
            masked_cts.append(masked_ct)
        bus.round()
    else:
        mask_lists: list[list[int]] = []
        mask_cts_by_party: list[list] = [[] for _ in range(m)]
        for value, mask_bits in zip(adjusted, bits_list):
            # Every client picks a mask, encrypts it and sends it to
            # client 1 (Algorithm 2 lines 1-3).
            masks = [secrets.randbits(mask_bits) for _ in range(m)]
            if batch_engine is not None:
                mask_cts = batch_engine.encrypt_ciphertexts(masks)
            else:
                mask_cts = [pk.encrypt(r) for r in masks]
            masked_ct = value.ciphertext
            for mask_ct in mask_cts:
                masked_ct = masked_ct + mask_ct
            masked_cts.append(masked_ct)
            mask_lists.append(masks)
            for party, mask_ct in enumerate(mask_cts):
                mask_cts_by_party[party].append(mask_ct)
        if bus is not None:
            # Clients 2..m send their batched mask ciphertexts to client 1
            # (Algorithm 2 lines 1-3); client 1's own masks stay local.
            for party in range(1, m):
                bus.send_payload(
                    party, 0, mask_cts_by_party[party], tag="mpc-convert"
                )
            bus.round()
    combine = (
        bus is not None
        and services is not None
        and threshold.decrypt_mode == "combine"
    )
    if bus is not None:
        if combine:
            vectors = record_threshold_decrypt(
                bus, masked_cts, tag="mpc-convert", services=services
            )
        else:
            record_threshold_decrypt(bus, masked_cts, tag="mpc-convert")
    # Joint decryption of the masked values (line 5): reconstructed from
    # the m share vectors the flow moved, or — in simulate mode — batched
    # through the engine's CRT shortcut (fanned out across its workers).
    if combine:
        masked_plains = combine_partial_vectors(
            pk, vectors, m, signed=True, theta=threshold.theta
        )
    elif batch_engine is not None:
        masked_plains = batch_engine.threshold_decrypt_batch(masked_cts, signed=True)
    else:
        masked_plains = threshold.joint_decrypt_batch(masked_cts, signed=True)
    results: list[SharedValue] = []
    for j, (masked_plain, extra) in enumerate(zip(masked_plains, extras)):
        if counters is not None:
            counters.threshold_decryptions += 1
            counters.to_shares += 1
        # Client 1 sets e - r_1, the others -r_i (lines 6-8).
        if reactive:
            neg_shares = [int(replies[party][1].values[j]) for party in range(1, m)]
            if engine.authenticated:
                shared = engine._make_shared(
                    (masked_plain - own_masks[j] + sum(neg_shares)) % q
                )
            else:
                share_list = [(masked_plain - own_masks[j]) % q] + [
                    v % q for v in neg_shares
                ]
                shared = SharedValue(engine, tuple(share_list))
        else:
            masks = mask_lists[j]
            plain = masked_plain - sum(masks)  # == the signed plaintext
            if engine.authenticated:
                shared = engine._make_shared(plain % q)
            else:
                share_list = [(-r) % q for r in masks]
                share_list[0] = (masked_plain - masks[0]) % q
                shared = SharedValue(engine, tuple(share_list))
        # Account the mask broadcast + combine as one communication round.
        engine._record_round(messages=2 * (m - 1), values=m)
        if extra:
            shared = comparison.trunc_pr(engine, shared, fixed.k + extra, extra)
        results.append(shared)
    return results


def share_to_cipher(
    value: SharedValue,
    threshold: ThresholdPaillier,
    fixed: FixedPointOps,
    counters: ConversionCounters | None = None,
    exponent: int | None = None,
    bus: MessageBus | None = None,
) -> EncryptedNumber:
    """Reverse conversion (§5.2): encrypt shares, sum homomorphically.

    The plaintext of the returned ciphertext is Σ⟨x⟩_i over the integers,
    i.e. x + t·q with 0 <= t < m; callers must decrypt it through
    :func:`decrypt_shared_cipher` (or convert it back with
    ``cipher_to_share(..., wrapped=True)``, which reduces mod q for free).

    ``exponent`` declares the fixed-point scale of the shared value:
    -F (the default) for fixed-point values, 0 for raw integers/bits such
    as the enhanced protocol's selection vector [λ].

    With a ``bus``, clients 2..m send their encrypted shares to client 1,
    who broadcasts the homomorphic sum back — 2(m−1) ciphertext messages
    over two rounds (the seed broadcast ``ciphertext_bytes * m``, i.e.
    m(m−1) ciphertexts).
    """
    from repro.crypto.encoding import PaillierEncoder

    pk = threshold.public_key
    encoder = PaillierEncoder(pk, frac_bits=fixed.f)
    total = None
    share_cts = []
    for share in value.shares:
        ct = pk.encrypt(share)
        share_cts.append(ct)
        total = ct if total is None else total + ct
    if bus is not None:
        for party in range(1, value.n_parties):
            bus.send_payload(party, 0, share_cts[party], tag="mpc-convert")
        bus.broadcast_payload(0, total, tag="mpc-convert")
        bus.round(2)
    if counters is not None:
        counters.to_cipher += 1
    value.engine._record_round(
        messages=value.n_parties * (value.n_parties - 1), values=value.n_parties
    )
    return EncryptedNumber(encoder, total, -fixed.f if exponent is None else exponent)


def decrypt_shared_cipher(
    value: EncryptedNumber,
    threshold: ThresholdPaillier,
    fixed: FixedPointOps,
    counters: ConversionCounters | None = None,
) -> float:
    """Jointly decrypt a share_to_cipher ciphertext and strip the q-wrap."""
    raw = threshold.joint_decrypt(value.ciphertext, signed=False)
    if counters is not None:
        counters.threshold_decryptions += 1
    q = fixed.engine.field.q
    reduced = fixed.engine.field.to_signed(raw % q)
    return reduced * 2.0**value.exponent
