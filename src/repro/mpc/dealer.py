"""The offline phase of SPDZ: a trusted dealer for correlated randomness.

The paper (§2.2): "The secret sharing based MPC has two phases: an offline
phase that is independent of the function and generates pre-computed
Beaver's triplets, and an online phase that computes the designated
function using these triplets."  The paper's evaluation reports the online
phase only; we likewise generate the correlated randomness with an
in-process dealer (DESIGN.md §4.5) and count its products so benchmarks can
report offline material consumed.

Supplied material:

* Beaver multiplication triples (a, b, ab)           — for `mul`
* random shared bits                                  — for comparisons
* PRandM tuples (r2, r1, bits of r1)                  — for Mod2m / TruncPr
* bitwise-shared random values                        — for BitDec
* random shared field elements                        — for masking
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpc.engine import MPCEngine
    from repro.mpc.sharing import SharedValue

__all__ = ["TrustedDealer", "DealerUsage"]


@dataclass
class DealerUsage:
    """Counters of offline material consumed (reported by benchmarks)."""

    triples: int = 0
    bits: int = 0
    prandm: int = 0
    bitwise: int = 0
    randoms: int = 0

    def total(self) -> int:
        return self.triples + self.bits + self.prandm + self.bitwise + self.randoms

    def snapshot(self) -> dict[str, int]:
        return {
            "triples": self.triples,
            "bits": self.bits,
            "prandm": self.prandm,
            "bitwise": self.bitwise,
            "randoms": self.randoms,
        }


@dataclass
class PRandMTuple:
    """⟨r2⟩, ⟨r1⟩ and the bitwise sharing of r1 (Catrina–de Hoogh PRandM)."""

    r2: "SharedValue"
    r1: "SharedValue"
    r1_bits: list["SharedValue"]  # little-endian


@dataclass
class BitwiseShared:
    """⟨r⟩ together with the bitwise sharing of all its bits."""

    r: "SharedValue"
    bits: list["SharedValue"]  # little-endian


class TrustedDealer:
    """Generates authenticated correlated randomness for one engine.

    A dedicated :class:`random.Random` stream keeps dealer output
    reproducible under a seed without perturbing callers' randomness.
    """

    def __init__(self, engine: "MPCEngine", seed: int | None = None):
        self.engine = engine
        self.rng = random.Random(seed)
        self.usage = DealerUsage()

    # -- helpers -----------------------------------------------------------

    def _rand_field(self) -> int:
        return self.rng.randrange(self.engine.field.q)

    def _deal(self, value: int) -> "SharedValue":
        return self.engine._make_shared(value, rng=self.rng)

    # -- products ------------------------------------------------------------

    def triple(self) -> tuple["SharedValue", "SharedValue", "SharedValue"]:
        a = self._rand_field()
        b = self._rand_field()
        self.usage.triples += 1
        q = self.engine.field.q
        return self._deal(a), self._deal(b), self._deal(a * b % q)

    def random_bit(self) -> "SharedValue":
        self.usage.bits += 1
        return self._deal(self.rng.randrange(2))

    def random_value(self) -> tuple["SharedValue", int]:
        """A random shared value; the plaintext is returned ONLY for tests."""
        self.usage.randoms += 1
        r = self._rand_field()
        return self._deal(r), r

    def prandm(self, k: int, m: int) -> PRandMTuple:
        """Randomness for Mod2m/TruncPr on k-bit values truncating m bits.

        r1 is a uniform m-bit value shared bitwise; r2 is a uniform
        (k + κ - m)-bit value providing the statistical mask.
        """
        kappa = self.engine.kappa
        if k + kappa + 1 >= self.engine.field.q.bit_length():
            raise ValueError(
                f"k={k} too large for field (needs k + kappa + 1 < "
                f"{self.engine.field.q.bit_length()})"
            )
        bits = [self.rng.randrange(2) for _ in range(m)]
        r1 = sum(b << i for i, b in enumerate(bits))
        r2 = self.rng.randrange(1 << (k + kappa - m)) if k + kappa > m else 0
        self.usage.prandm += 1
        return PRandMTuple(
            r2=self._deal(r2),
            r1=self._deal(r1),
            r1_bits=[self._deal(b) for b in bits],
        )

    def bitwise_random(self, n_bits: int) -> BitwiseShared:
        """A uniform n_bits-bit value shared both arithmetically and bitwise."""
        bits = [self.rng.randrange(2) for _ in range(n_bits)]
        r = sum(b << i for i, b in enumerate(bits))
        self.usage.bitwise += 1
        return BitwiseShared(r=self._deal(r), bits=[self._deal(b) for b in bits])
