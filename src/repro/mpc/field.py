"""Prime field arithmetic for the additive secret sharing scheme (paper §2.2).

SPDZ shares values in Z_q for a public prime q.  We use the Mersenne prime
q = 2^127 - 1, which comfortably holds the fixed-point format of
:mod:`repro.mpc.fixed` (K = 40 value bits, F = 16 fractional bits,
statistical security κ = 40: the largest intermediate, a 2K-bit product
plus a κ-bit statistical mask, stays below q).
"""

from __future__ import annotations

import secrets

__all__ = ["PrimeField", "MERSENNE_127"]


class PrimeField:
    """Arithmetic in Z_q with signed-representative helpers.

    Values are plain Python ints in [0, q); "signed" views map the upper
    half of the field to negative integers, matching the two's-complement
    convention the comparison protocols rely on.
    """

    def __init__(self, modulus: int):
        if modulus < 3:
            raise ValueError(f"modulus must be an odd prime >= 3, got {modulus}")
        self.q = modulus
        self.half = modulus // 2

    # -- representatives --------------------------------------------------

    def from_signed(self, value: int) -> int:
        return value % self.q

    def to_signed(self, element: int) -> int:
        element %= self.q
        return element - self.q if element > self.half else element

    # -- arithmetic --------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.q

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.q

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.q

    def neg(self, a: int) -> int:
        return (-a) % self.q

    def inv(self, a: int) -> int:
        if a % self.q == 0:
            raise ZeroDivisionError("inverse of zero in prime field")
        return pow(a, -1, self.q)

    def pow2_inv(self, m: int) -> int:
        """Inverse of 2^m, used by the truncation protocols."""
        return pow(pow(2, m, self.q), -1, self.q)

    def random(self) -> int:
        return secrets.randbelow(self.q)

    def random_below(self, bound: int) -> int:
        if bound > self.q:
            raise ValueError("bound exceeds the field size")
        return secrets.randbelow(bound)

    # -- sharing helpers ----------------------------------------------------

    def additive_split(self, value: int, n_parties: int) -> list[int]:
        """Split ``value`` into ``n_parties`` uniformly random summands."""
        shares = [self.random() for _ in range(n_parties - 1)]
        shares.append((value - sum(shares)) % self.q)
        return shares

    def __repr__(self) -> str:
        return f"PrimeField(q~2^{self.q.bit_length()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and self.q == other.q

    def __hash__(self) -> int:
        return hash(("PrimeField", self.q))


#: The default field used by all Pivot protocols.
MERSENNE_127 = PrimeField(2**127 - 1)
