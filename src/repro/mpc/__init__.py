"""MPC substrate: SPDZ-style additive secret sharing, Beaver multiplication,
the Catrina–de Hoogh comparison suite, fixed-point division/exponential, and
the ciphertext<->share conversions of Algorithm 2 (paper §2.2, §5.2)."""

from repro.mpc.advanced import FixedPointOps
from repro.mpc.engine import MPCEngine
from repro.mpc.field import MERSENNE_127, PrimeField
from repro.mpc.sharing import MacCheckError, SharedValue

__all__ = [
    "FixedPointOps",
    "MERSENNE_127",
    "MPCEngine",
    "MacCheckError",
    "PrimeField",
    "SharedValue",
]
