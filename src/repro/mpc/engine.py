"""The online phase of the SPDZ-style MPC engine (paper §2.2).

Provides the secure computation primitives the paper builds on:

* secure addition (local),
* secure multiplication via Beaver triples (one round),
* inner products (one round regardless of length),
* opening (reconstruction) with optional MAC checking.

All m parties run in one process; communication is *accounted* rather than
performed: every opening increments round/byte counters which the cost
model (repro.analysis) converts into modeled network time.  Batched
variants (`open_many`, `mul_many`, `inner_product`) count a single round,
exactly as a real SPDZ implementation would merge parallel openings into
one message exchange.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass

from repro.analysis import opcount
from repro.mpc.dealer import TrustedDealer
from repro.mpc.field import MERSENNE_127, PrimeField
from repro.mpc.sharing import MacCheckError, SharedValue

__all__ = ["MPCEngine", "CommStats"]

#: Statistical security parameter κ (bits) used by masking and truncation.
DEFAULT_KAPPA = 40


@dataclass
class CommStats:
    """Online communication counters (per engine)."""

    rounds: int = 0
    messages: int = 0
    bytes: int = 0
    opened_values: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "bytes": self.bytes,
            "opened_values": self.opened_values,
        }


class MPCEngine:
    """An m-party SPDZ-style engine over a prime field.

    Parameters
    ----------
    n_parties:
        Number of clients m.
    field:
        The prime field Z_q (default: Mersenne 2^127 - 1).
    authenticated:
        If True, every share carries SPDZ MAC shares and every opening
        verifies them (malicious model, §9.1.1); if False, plain additive
        shares (semi-honest model, §2.2).
    seed:
        Seeds the dealer and the engine's own sharing randomness, making
        protocol runs reproducible.
    """

    def __init__(
        self,
        n_parties: int,
        field: PrimeField = MERSENNE_127,
        authenticated: bool = False,
        kappa: int = DEFAULT_KAPPA,
        seed: int | None = None,
    ):
        if n_parties < 2:
            raise ValueError(f"MPC needs >= 2 parties, got {n_parties}")
        self.n_parties = n_parties
        self.field = field
        self.authenticated = authenticated
        self.kappa = kappa
        self.rng = random.Random(seed)
        # Global MAC key Delta = sum of per-party key shares.
        self.mac_key_shares = tuple(field.random() for _ in range(n_parties))
        self.mac_key = sum(self.mac_key_shares) % field.q
        self.dealer = TrustedDealer(self, seed=None if seed is None else seed + 1)
        self.stats = CommStats()
        self._element_bytes = (field.q.bit_length() + 7) // 8

    # ------------------------------------------------------------------
    # sharing / opening
    # ------------------------------------------------------------------

    def _make_shared(self, value: int, rng: random.Random | None = None) -> SharedValue:
        """Split ``value`` (field representative) into authenticated shares."""
        q = self.field.q
        value %= q
        rand = rng or self.rng
        shares = [rand.randrange(q) for _ in range(self.n_parties - 1)]
        shares.append((value - sum(shares)) % q)
        macs = None
        if self.authenticated:
            mac_total = value * self.mac_key % q
            mac_shares = [rand.randrange(q) for _ in range(self.n_parties - 1)]
            mac_shares.append((mac_total - sum(mac_shares)) % q)
            macs = tuple(mac_shares)
        return SharedValue(self, tuple(shares), macs)

    def share_public(self, value: int) -> SharedValue:
        """⟨value⟩ for a publicly known value (no communication needed)."""
        q = self.field.q
        value %= q
        shares = tuple([value] + [0] * (self.n_parties - 1))
        macs = None
        if self.authenticated:
            macs = tuple(value * dk % q for dk in self.mac_key_shares)
        return SharedValue(self, shares, macs)

    def input_private(self, value: int, owner: int = 0) -> SharedValue:
        """Party ``owner`` secret-shares her private input.

        One round: the owner sends one share to every other party.
        """
        if not 0 <= owner < self.n_parties:
            raise ValueError(f"owner index {owner} out of range")
        self._record_round(messages=self.n_parties - 1, values=1)
        return self._make_shared(value % self.field.q)

    def input_many(self, values: list[int], owner: int = 0) -> list[SharedValue]:
        if not 0 <= owner < self.n_parties:
            raise ValueError(f"owner index {owner} out of range")
        self._record_round(messages=self.n_parties - 1, values=len(values))
        return [self._make_shared(v % self.field.q) for v in values]

    def open(self, value: SharedValue) -> int:
        return self.open_many([value])[0]

    def open_many(self, values: list[SharedValue]) -> list[int]:
        """Open a batch in a single communication round, with MAC checks."""
        if not values:
            return []
        q = self.field.q
        results = []
        for sv in values:
            if sv.engine is not self:
                raise ValueError("shared value belongs to a different engine")
            opened = sum(sv.shares) % q
            if self.authenticated:
                self._check_mac(sv, opened)
            results.append(opened)
        self._record_round(
            messages=self.n_parties * (self.n_parties - 1), values=len(values)
        )
        return results

    def open_signed(self, value: SharedValue) -> int:
        return self.field.to_signed(self.open(value))

    def _check_mac(self, sv: SharedValue, opened: int) -> None:
        q = self.field.q
        if sv.macs is None:
            raise MacCheckError("authenticated engine received unauthenticated share")
        # Each party i commits sigma_i = mac_i - Delta_i * opened; the sums
        # must vanish.  (We compute it directly; a real run adds a commit
        # round, counted in _record_round for openings.)
        total = sum(
            (m - dk * opened) % q for m, dk in zip(sv.macs, self.mac_key_shares)
        )
        if total % q != 0:
            raise MacCheckError("MAC check failed: shares were tampered with")

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def add_public(self, a: SharedValue, constant: int) -> SharedValue:
        """⟨a + c⟩ for public c: party 0 adjusts her share, MACs locally."""
        q = self.field.q
        c = constant % q
        shares = list(a.shares)
        shares[0] = (shares[0] + c) % q
        macs = None
        if a.macs is not None:
            macs = tuple(
                (m + dk * c) % q for m, dk in zip(a.macs, self.mac_key_shares)
            )
        return SharedValue(self, tuple(shares), macs)

    def mul(self, a: SharedValue, b: SharedValue) -> SharedValue:
        return self.mul_many([(a, b)])[0]

    def mul_many(self, pairs: list[tuple[SharedValue, SharedValue]]) -> list[SharedValue]:
        """Beaver multiplication of many pairs in one communication round."""
        if not pairs:
            return []
        opcount.GLOBAL.cs += len(pairs)
        triples = [self.dealer.triple() for _ in pairs]
        masked = []
        for (x, y), (ta, tb, _) in zip(pairs, triples):
            masked.append(x - ta)
            masked.append(y - tb)
        opened = self.open_many(masked)
        results = []
        for idx, ((_, _), (ta, tb, tc)) in enumerate(zip(pairs, triples)):
            e = opened[2 * idx]
            f = opened[2 * idx + 1]
            z = tc + e * tb + f * ta
            z = self.add_public(z, e * f % self.field.q)
            results.append(z)
        return results

    def inner_product(
        self, xs: list[SharedValue], ys: list[SharedValue]
    ) -> SharedValue:
        """⟨Σ x_i y_i⟩ in one round (masked openings are batched)."""
        if len(xs) != len(ys):
            raise ValueError("inner product length mismatch")
        if not xs:
            return self.share_public(0)
        products = self.mul_many(list(zip(xs, ys)))
        total = products[0]
        for p in products[1:]:
            total = total + p
        return total

    def sum_values(self, values: list[SharedValue]) -> SharedValue:
        if not values:
            return self.share_public(0)
        total = values[0]
        for v in values[1:]:
            total = total + v
        return total

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _record_round(self, messages: int, values: int) -> None:
        self.stats.rounds += 1
        self.stats.messages += messages
        self.stats.bytes += messages * values * self._element_bytes
        self.stats.opened_values += values

    def reset_stats(self) -> None:
        self.stats = CommStats()

    # ------------------------------------------------------------------
    # convenience for protocols and tests
    # ------------------------------------------------------------------

    def random_mask(self, bits: int) -> int:
        """A uniformly random mask in [0, 2^bits) (party-local randomness)."""
        return secrets.randbits(bits)
