"""Additive (and SPDZ-authenticated) secret shares (paper §2.2, §9.1.1).

A :class:`SharedValue` ⟨a⟩ = (⟨a⟩_1, ..., ⟨a⟩_m) carries one field element
per party; the secret is the sum mod q.  In authenticated mode every value
additionally carries MAC shares (⟨δ⟩_1, ..., ⟨δ⟩_m) with δ = a·Δ for the
global MAC key Δ = Σ ⟨Δ⟩_i, which is what lets SPDZ detect share tampering
at opening time (§9.1.1, "SPDZ authenticated shares").

Linear operations (addition, public scaling, public addition) are local —
each party combines her own shares — and are implemented here.  Anything
interactive (multiplication, opening, comparison) lives on
:class:`repro.mpc.engine.MPCEngine`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.mpc.engine import MPCEngine

__all__ = ["SharedValue", "MacCheckError"]


class MacCheckError(Exception):
    """An opened value failed its SPDZ MAC check (malicious tampering)."""


class SharedValue:
    """An additively secret-shared field element ⟨a⟩.

    Operators:

    * ``a + b``, ``a - b``  — local share-wise combination (SharedValue or
      public int, which must already be a field representative).
    * ``a * k`` for int k  — local public scaling.
    * ``a * b`` for SharedValue b — **interactive** Beaver multiplication,
      dispatched to the owning engine (one communication round).
    """

    __slots__ = ("engine", "shares", "macs")

    def __init__(
        self,
        engine: "MPCEngine",
        shares: tuple[int, ...],
        macs: tuple[int, ...] | None = None,
    ):
        self.engine = engine
        self.shares = shares
        self.macs = macs

    # -- internals ---------------------------------------------------------

    def _require_compatible(self, other: "SharedValue") -> None:
        if self.engine is not other.engine:
            raise ValueError("shared values belong to different MPC engines")

    @property
    def n_parties(self) -> int:
        return len(self.shares)

    # -- linear (local) operations ------------------------------------------

    def __add__(self, other: "SharedValue | int") -> "SharedValue":
        q = self.engine.field.q
        if isinstance(other, SharedValue):
            self._require_compatible(other)
            shares = tuple(
                (a + b) % q for a, b in zip(self.shares, other.shares)
            )
            macs = None
            if self.macs is not None and other.macs is not None:
                macs = tuple((a + b) % q for a, b in zip(self.macs, other.macs))
            return SharedValue(self.engine, shares, macs)
        if isinstance(other, int):
            return self.engine.add_public(self, other)
        return NotImplemented

    __radd__ = __add__

    def __neg__(self) -> "SharedValue":
        q = self.engine.field.q
        macs = None if self.macs is None else tuple((-m) % q for m in self.macs)
        return SharedValue(self.engine, tuple((-s) % q for s in self.shares), macs)

    def __sub__(self, other: "SharedValue | int") -> "SharedValue":
        if isinstance(other, SharedValue):
            return self + (-other)
        if isinstance(other, int):
            return self.engine.add_public(self, -other)
        return NotImplemented

    def __rsub__(self, other: int) -> "SharedValue":
        return (-self) + other

    def __mul__(self, other: "SharedValue | int") -> "SharedValue":
        if isinstance(other, SharedValue):
            return self.engine.mul(self, other)
        if isinstance(other, int):
            q = self.engine.field.q
            k = other % q
            shares = tuple((s * k) % q for s in self.shares)
            macs = (
                None
                if self.macs is None
                else tuple((m * k) % q for m in self.macs)
            )
            return SharedValue(self.engine, shares, macs)
        return NotImplemented

    def __rmul__(self, other: int) -> "SharedValue":
        return self.__mul__(other)

    def __repr__(self) -> str:
        kind = "auth" if self.macs is not None else "semi"
        return f"SharedValue({kind}, m={len(self.shares)})"
