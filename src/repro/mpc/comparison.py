"""Secure comparison and bit-level protocols (paper §2.2, refs [17, 18]).

Implements the Catrina–de Hoogh suite on top of the engine and dealer:

* ``bit_lt_public``  — compare a public value against a bitwise-shared one
* ``mod2m``          — ⟨a mod 2^m⟩ (exact)
* ``trunc``          — ⟨⌊a / 2^m⌋⟩ (exact, floor for signed a)
* ``trunc_pr``       — probabilistic truncation (±1 ulp, one round cheaper)
* ``ltz / lt / gt``  — sign extraction / comparisons, shared 0/1 result
* ``eqz / eq``       — equality tests
* ``bit_dec``        — bit decomposition of a non-negative shared value
* ``argmax``         — secure maximum with one-hot index (used for the best
                       split, paper §4.1 "secure maximum computation")

All protocols follow the paper's convention: inputs are secretly shared
values in a k-bit signed range, outputs are secretly shared values; nothing
is revealed except explicitly opened masked values whose distributions are
statistically independent of the inputs (masking parameter κ).
"""

from __future__ import annotations

from repro.analysis import opcount
from repro.mpc.engine import MPCEngine
from repro.mpc.sharing import SharedValue

__all__ = [
    "bit_lt_public",
    "mod2m",
    "trunc",
    "trunc_pr",
    "ltz",
    "lt",
    "gt",
    "le",
    "eqz",
    "eq",
    "bit_dec",
    "prefix_or_msb_first",
    "argmax",
    "select",
]


def _public_bits(value: int, n_bits: int) -> list[int]:
    return [(value >> i) & 1 for i in range(n_bits)]


def bit_lt_public(
    engine: MPCEngine, public: int, shared_bits: list[SharedValue]
) -> SharedValue:
    """⟨1⟩ if ``public`` < r else ⟨0⟩, for bitwise-shared r (little-endian).

    Classic most-significant-difference scan: XOR with the public bits is
    affine, the prefix-OR localises the first differing bit, and because the
    public bits are known the final selection Σ f_i·r_i collapses to the
    local sum Σ_{i: c_i=0} f_i.
    """
    m = len(shared_bits)
    if m == 0:
        return engine.share_public(0)
    c_bits = _public_bits(public, m)
    # d_i = c_i XOR r_i, affine in the shared bit for public c_i.
    diffs = []
    for c_i, r_i in zip(c_bits, shared_bits):
        diffs.append((1 - r_i) if c_i else r_i)
    prefix = prefix_or_msb_first(engine, list(reversed(diffs)))  # MSB first
    # f_i marks the most significant differing position.
    result = engine.share_public(0)
    previous = engine.share_public(0)
    for msb_index, p in enumerate(prefix):
        i = m - 1 - msb_index  # little-endian index
        f_i = p - previous
        previous = p
        if c_bits[i] == 0:
            result = result + f_i
    return result


def prefix_or_msb_first(
    engine: MPCEngine, bits_msb_first: list[SharedValue]
) -> list[SharedValue]:
    """Running OR over shared bits, given and returned MSB-first."""
    prefix: list[SharedValue] = []
    acc: SharedValue | None = None
    for bit in bits_msb_first:
        if acc is None:
            acc = bit
        else:
            # OR(a, b) = a + b - a*b
            acc = acc + bit - engine.mul(acc, bit)
        prefix.append(acc)
    return prefix


def mod2m(engine: MPCEngine, a: SharedValue, k: int, m: int) -> SharedValue:
    """⟨a mod 2^m⟩ for a in the k-bit signed range, 0 <= m <= k-1."""
    if m == 0:
        return engine.share_public(0)
    if m >= k:
        raise ValueError(f"mod2m requires m < k, got m={m}, k={k}")
    tup = engine.dealer.prandm(k, m)
    masked = a + (tup.r2 * (1 << m)) + tup.r1
    masked = engine.add_public(masked, 1 << (k - 1))
    c = engine.open(masked)
    c_prime = c % (1 << m)
    u = bit_lt_public(engine, c_prime, tup.r1_bits)
    return engine.add_public(-tup.r1 + u * (1 << m), c_prime)


def trunc(engine: MPCEngine, a: SharedValue, k: int, m: int) -> SharedValue:
    """⟨⌊a / 2^m⌋⟩ exactly (arithmetic shift for negative a)."""
    if m == 0:
        return a
    remainder = mod2m(engine, a, k, m)
    return (a - remainder) * engine.field.pow2_inv(m)


def trunc_pr(engine: MPCEngine, a: SharedValue, k: int, m: int) -> SharedValue:
    """Probabilistic truncation: ⌊a / 2^m⌋ + u with a (data-dependent) bit u.

    One round and no bit-comparison; the ±1-ulp error is the standard SPDZ
    trade-off for fixed-point multiplication rescaling.
    """
    if m == 0:
        return a
    tup = engine.dealer.prandm(k, m)
    masked = a + (tup.r2 * (1 << m)) + tup.r1
    masked = engine.add_public(masked, 1 << (k - 1))
    c = engine.open(masked)
    c_prime = c % (1 << m)
    remainder = engine.add_public(-tup.r1, c_prime)  # a mod 2^m - u*2^m
    return (a - remainder) * engine.field.pow2_inv(m)


def ltz(engine: MPCEngine, a: SharedValue, k: int) -> SharedValue:
    """⟨1⟩ if a < 0 else ⟨0⟩ (a in k-bit signed range)."""
    opcount.GLOBAL.cc += 1
    return -trunc(engine, a, k, k - 1)


def lt(engine: MPCEngine, a: SharedValue, b: SharedValue, k: int) -> SharedValue:
    """⟨1⟩ if a < b.  Uses k+1 bits internally so a - b cannot overflow."""
    return ltz(engine, a - b, k + 1)


def gt(engine: MPCEngine, a: SharedValue, b: SharedValue, k: int) -> SharedValue:
    return lt(engine, b, a, k)


def le(engine: MPCEngine, a: SharedValue, b: SharedValue, k: int) -> SharedValue:
    return 1 - gt(engine, a, b, k)


def eqz(engine: MPCEngine, a: SharedValue, k: int) -> SharedValue:
    """⟨1⟩ if a == 0 else ⟨0⟩: neither negative nor positive."""
    negative = ltz(engine, a, k)
    positive = ltz(engine, -a, k)
    return 1 - negative - positive


def eq(engine: MPCEngine, a: SharedValue, b: SharedValue, k: int) -> SharedValue:
    return eqz(engine, a - b, k + 1)


def bit_dec(engine: MPCEngine, a: SharedValue, k: int) -> list[SharedValue]:
    """Bits (little-endian, k shared bits) of a, for a in [0, 2^k).

    Opens c = 2^(k+κ) + a - r for a bitwise-shared random r, then runs a
    binary ripple-carry addition of the public c with the shared bits of r;
    the low k sum bits are exactly the bits of a.
    """
    kappa = engine.kappa
    bw = engine.dealer.bitwise_random(k + kappa)
    masked = engine.add_public(a - bw.r, 1 << (k + kappa))
    c = engine.open(masked)
    carry = engine.share_public(0)
    bits: list[SharedValue] = []
    for i in range(k):
        r_i = bw.bits[i]
        c_i = (c >> i) & 1
        t = engine.mul(r_i, carry)
        xor = r_i + carry - t * 2  # r_i XOR carry
        if c_i == 0:
            bits.append(xor)
            carry = t
        else:
            bits.append(engine.add_public(-xor, 1))  # 1 XOR (r_i XOR carry)
            carry = r_i + carry - t  # OR when the public bit is 1
    return bits


def select(
    engine: MPCEngine, condition: SharedValue, if_true: SharedValue, if_false: SharedValue
) -> SharedValue:
    """⟨condition ? if_true : if_false⟩ for a shared 0/1 condition (1 mul)."""
    return if_false + engine.mul(condition, if_true - if_false)


def argmax(
    engine: MPCEngine, values: list[SharedValue], k: int
) -> tuple[SharedValue, SharedValue, list[SharedValue]]:
    """Secure maximum with secret index (paper §4.1).

    Returns (⟨index⟩, ⟨max⟩, one-hot ⟨λ⟩) where λ_t = 1 iff t is the argmax.
    The one-hot form is what the enhanced protocol's private split selection
    consumes (§5.2); ties resolve to the earliest index, matching the
    plaintext CART implementation.
    """
    if not values:
        raise ValueError("argmax of an empty list")
    current_max = values[0]
    onehot = [engine.share_public(1)] + [
        engine.share_public(0) for _ in values[1:]
    ]
    for i in range(1, len(values)):
        is_greater = gt(engine, values[i], current_max, k)
        current_max = select(engine, is_greater, values[i], current_max)
        keep = engine.add_public(-is_greater, 1)  # 1 - b
        updates = engine.mul_many([(onehot[j], keep) for j in range(i)])
        for j in range(i):
            onehot[j] = updates[j]
        onehot[i] = is_greater
    index = engine.share_public(0)
    for t, flag in enumerate(onehot):
        index = index + flag * t
    return index, current_max, onehot
