"""Differentially private federated training (paper §9.2).

Adds the centralized-DP mechanisms — noisy pruning counts (secure Laplace,
Algorithm 5), exponential-mechanism split selection (Algorithm 6), noisy
leaf statistics — inside the MPC so that the *released model itself* leaks
only an ε-bounded amount about any individual training sample.  With the
federation API this is the estimator's uniform ``dp=`` hook: the same
``PivotClassifier`` trains with or without the mechanisms.

Run:  python examples/dp_training.py
"""

from repro import DPConfig, Federation, Party, PivotClassifier, PivotConfig
from repro.data import make_classification
from repro.tree import TreeParams
from repro.tree.metrics import accuracy


def main() -> None:
    X, y = make_classification(50, 4, n_classes=2, seed=20)
    params = TreeParams(max_depth=2, max_splits=3)

    def parties() -> list[Party]:
        return [
            Party(X[:, :2], labels=y, name="hospital"),
            Party(X[:, 2:3], name="lab"),
            Party(X[:, 3:], name="pharmacy"),
        ]

    print("epsilon | total budget B=2e(h+1) | train accuracy")
    print("--------+----------------------+---------------")
    for epsilon in (0.25, 1.0, 5.0, None):
        dp = None if epsilon is None else DPConfig(epsilon=epsilon)
        with Federation(
            parties(), config=PivotConfig(keysize=256, tree=params, seed=21)
        ) as fed:
            model = PivotClassifier(dp=dp).fit(fed)
            acc = accuracy(model.predict(fed.slices(X)), y)
        if epsilon is None:
            print(f"  (none) |            --        | {acc:.3f}   <- non-DP")
        else:
            budget = dp.total_budget(params.max_depth)
            print(f"  {epsilon:5.2f} |        {budget:5.1f}         | {acc:.3f}")

    print("\nAll noise is sampled inside MPC (Algorithms 5-6): no client ever"
          "\nsees the noise values, so no one can subtract them back out.")


if __name__ == "__main__":
    main()
