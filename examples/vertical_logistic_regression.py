"""Beyond trees: vertical logistic regression with the same stack (§7.3).

The paper sketches how the TPHE + MPC recipe generalises; this example runs
the working implementation: encrypted per-client weight blocks, secure
sigmoid on shares, homomorphic gradient updates — no client ever sees the
weights, the loss, or another client's features.

Run:  python examples/vertical_logistic_regression.py
"""

import numpy as np

from repro import PivotConfig, PivotContext, PivotLogisticRegression
from repro.data import vertical_partition


def main() -> None:
    rng = np.random.default_rng(1)
    X = rng.normal(size=(32, 4))
    # Ground truth: a linear rule over features held by DIFFERENT clients.
    y = ((0.8 * X[:, 0] - 1.2 * X[:, 3]) > 0).astype(np.int64)
    partition = vertical_partition(X, y, n_clients=2, task="classification")

    ctx = PivotContext(partition, PivotConfig(keysize=256, seed=4))
    model = PivotLogisticRegression(
        ctx, learning_rate=0.5, n_epochs=4, batch_size=8
    ).fit()

    probabilities = model.predict_proba(X[:10])
    predictions = (probabilities >= 0.5).astype(int)
    print("probabilities:", np.round(probabilities, 3))
    print("predictions:  ", list(predictions))
    print("ground truth: ", list(y[:10]))
    print("train accuracy:", (model.predict(X) == y).mean())
    print("\nweights stayed encrypted end to end; only the final class"
          "\nprobabilities were ever decrypted (jointly).")


if __name__ == "__main__":
    main()
