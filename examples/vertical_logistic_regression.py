"""Beyond trees: vertical logistic regression with the same stack (§7.3).

The paper sketches how the TPHE + MPC recipe generalises; this example runs
the working implementation behind ``PivotLogisticClassifier``: encrypted
per-party weight blocks, secure sigmoid on shares, homomorphic gradient
updates — no party ever sees the weights, the loss, or another party's
features (the federation enforces the boundary).

Run:  python examples/vertical_logistic_regression.py
"""

import numpy as np

from repro import Federation, Party, PivotConfig, PivotLogisticClassifier


def main() -> None:
    rng = np.random.default_rng(1)
    X = rng.normal(size=(32, 4))
    # Ground truth: a linear rule over features held by DIFFERENT parties.
    y = ((0.8 * X[:, 0] - 1.2 * X[:, 3]) > 0).astype(np.int64)
    parties = [
        Party(X[:, :2], labels=y, name="telco"),
        Party(X[:, 2:], name="retailer"),
    ]

    with Federation(parties, config=PivotConfig(keysize=256, seed=4)) as fed:
        model = PivotLogisticClassifier(
            learning_rate=0.5, n_epochs=4, batch_size=8
        ).fit(fed)

        probabilities = model.predict_proba(fed.slices(X[:10]))
        predictions = (probabilities >= 0.5).astype(int)
        print("probabilities:", np.round(probabilities, 3))
        print("predictions:  ", list(predictions))
        print("ground truth: ", list(y[:10]))
        print("train accuracy:", model.score(fed.slices(X), y))
        print("\nweights stayed encrypted end to end; only the final class"
              "\nprobabilities were ever decrypted (jointly).")


if __name__ == "__main__":
    main()
