"""Per-party process deployment over a real socket transport.

The paper runs each client on her own machine in a LAN (§8.1).  This
example reproduces that topology on one host: every non-super party is
launched in her **own worker process** holding her raw feature columns
and her partial threshold-Paillier key share, the super client's process
orchestrates, and every protocol payload crosses a real local TCP socket
(``AsyncioTransport``) instead of an in-process queue.

The point of the exercise: the physical deployment changes *nothing*
observable about the protocol.  The model, the predictions, the measured
wire bytes, and the round count are bit-identical to the single-process
in-memory run — which this script verifies at the end.

Run:  python examples/multiprocess_deployment.py
"""

import numpy as np

from repro import Federation, Party, PivotClassifier, PivotConfig
from repro.data import make_classification
from repro.federation.deployment import DeployedFederation, RemoteOpError
from repro.tree import TreeParams
from repro.tree.metrics import accuracy


def make_parties(X, y):
    return [
        Party(X[:, :2], labels=y, name="bank"),  # super client = orchestrator
        Party(X[:, 2:4], name="fintech"),  # worker process
        Party(X[:, 4:], name="insurer"),  # worker process
    ]


def main() -> None:
    X, y = make_classification(n_samples=40, n_features=6, n_classes=2, seed=42)
    config = PivotConfig(
        keysize=256, tree=TreeParams(max_depth=2, max_splits=2), seed=7
    )

    # 1. The deployed run: 2 worker processes (fintech, insurer), payloads
    #    over local sockets.  Spawning hands each party her own columns;
    #    the orchestrator's copies are replaced by NaN poison arrays.
    with DeployedFederation(make_parties(X, y), config=config) as fed:
        print("worker processes:", sorted(fed.workers))
        print("socket ports:", fed.context.bus.transport.ports)

        model = PivotClassifier(protocol="basic").fit(fed)
        predictions = model.predict(fed.slices(X[:20]))
        print("deployed-run accuracy on 20 samples:",
              accuracy(predictions, y[:20]))

        # 2. The locality boundary is physical now: the orchestrator holds
        #    no raw columns of the remote parties at all.
        try:
            # pivotlint: disable=PL001 -- deliberate: demonstrates the
            # cross-process guard raising on a foreign party's columns.
            fed.context.clients[1].features.read()
        except RemoteOpError as error:
            print("cross-process read impossible:", str(error).split(";")[0])
        assert np.isnan(fed.parties[1]._raw_features).all()

        # 3. ... and so is the threshold structure: after provisioning,
        #    the dealer's private key and the workers' d_share values were
        #    scrubbed from this process.  Every plaintext in the run above
        #    was reconstructed from the 3 share vectors on the wire (the
        #    workers computed theirs with their own key shares).
        threshold = fed.context.threshold
        print("decrypt mode:", fed.decrypt_mode)
        assert threshold._private_key is None
        assert [s is not None for s in threshold.shares] == [True, False, False]
        try:
            threshold.joint_decrypt(threshold.public_key.encrypt(1))
        except RuntimeError as error:
            print("orchestrator cannot decrypt alone:",
                  str(error).split(":")[0])

        deployed_signature = model.model_.structure_signature()
        deployed_cost = fed.cost_snapshot()["bus"]
        deployed_predictions = list(predictions)

    # 4. The single-process in-memory baseline: same data, same config.
    with Federation(make_parties(X, y), config=config) as fed:
        baseline = PivotClassifier(protocol="basic").fit(fed)
        baseline_predictions = list(baseline.predict(fed.slices(X[:20])))
        baseline_cost = fed.cost_snapshot()["bus"]
        baseline_signature = baseline.model_.structure_signature()

    # 5. Deployment parity: bit-identical model and byte-identical wire.
    assert deployed_signature == baseline_signature
    assert deployed_predictions == baseline_predictions
    assert deployed_cost["bytes_measured"] == baseline_cost["bytes_measured"]
    assert deployed_cost["rounds"] == baseline_cost["rounds"]
    print("\nparity: model, predictions, "
          f"{deployed_cost['bytes_measured']} measured bytes and "
          f"{deployed_cost['rounds']} rounds identical across deployments")
    print("deployed transport:", deployed_cost["transport"])
    print("baseline transport:", baseline_cost["transport"])


if __name__ == "__main__":
    main()
