"""Quickstart: train and use a privacy-preserving vertical decision tree.

Three organisations hold disjoint feature columns for the same users; only
one of them (the "super client") holds the labels.  Each organisation is a
``Party``; a ``Federation`` runs the joint setup (threshold-Paillier keys,
MPC engine) and enforces the party boundary: no party can read another
party's raw columns — cross-party reads raise ``LocalityError``.  They
jointly train a CART classifier without revealing features, labels, or any
intermediate statistic — only the final model is released (Pivot's basic
protocol).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Federation, Party, PivotClassifier, PivotConfig
from repro.data import make_classification
from repro.tree import DecisionTree, TreeParams
from repro.tree.metrics import accuracy


def main() -> None:
    # 1. A dataset, split vertically over 3 organisations.  In production
    #    each party constructs her Party from her own database; here we
    #    slice a generated matrix.  Party 0 additionally holds the labels.
    X, y = make_classification(n_samples=60, n_features=6, n_classes=2, seed=42)
    parties = [
        Party(X[:, :2], labels=y, name="bank"),
        Party(X[:, 2:4], name="fintech"),
        Party(X[:, 4:], name="insurer"),
    ]

    # 2. Federation setup: threshold-Paillier keys (every party receives a
    #    partial secret key), MPC engine, candidate splits.  Small key size
    #    keeps the demo fast; see DESIGN.md.  The with-block releases the
    #    crypto engine's workers on exit.
    config = PivotConfig(
        keysize=256,
        tree=TreeParams(max_depth=3, max_splits=4),
        seed=7,
    )
    with Federation(parties, config=config) as fed:
        # 3. Joint training (Algorithm 3).  No party ever sees another
        #    party's features, the labels, or any plaintext statistic.
        model = PivotClassifier(protocol="basic").fit(fed)
        print("=== released model ===")
        print(model.model_.describe())

        # 4. Joint prediction (Algorithm 4): each party supplies only her
        #    own columns of the query rows.
        predictions = model.predict(fed.slices(X[:20]))
        print("\nsecure prediction accuracy on 20 samples:",
              accuracy(predictions, y[:20]))

        # 5. The enforced boundary: reading another party's raw columns
        #    raises (her own succeed, inside her scope).
        try:
            # pivotlint: disable=PL001 -- deliberate: demonstrates the
            # locality guard raising on a foreign party's columns.
            parties[1].features[0]
        except Exception as error:
            print("cross-party read blocked:", type(error).__name__)

        # 6. Sanity: the same tree a non-private CART would have built.
        grid: list[list[float]] = [[] for _ in range(X.shape[1])]
        for ci, cols in enumerate(fed.context.partition.columns_per_client):
            for local, global_col in enumerate(cols):
                grid[global_col] = fed.context.clients[ci].split_values[local]
        reference = DecisionTree(
            "classification", TreeParams(max_depth=3, max_splits=4)
        ).fit(X, y, split_candidates=grid)
        print("non-private CART accuracy on the same samples:",
              accuracy(reference.predict(X[:20]), y[:20]))

        # 7. What did the protocol cost?
        costs = fed.cost_snapshot()
        print("\nprotocol cost:",
              f"{costs['conversions']['threshold_decryptions']} threshold decryptions,",
              f"{costs['mpc']['rounds']} MPC rounds,",
              f"{costs['bus']['bytes'] / 1024:.0f} KiB on the bus")
        fed.assert_drained()  # every party consumed her whole inbox


if __name__ == "__main__":
    main()
