"""Quickstart: train and use a privacy-preserving vertical decision tree.

Three organisations hold disjoint feature columns for the same users; only
client 0 (the "super client") holds the labels.  They jointly train a
CART classifier without revealing features, labels, or any intermediate
statistic — only the final model is released (Pivot's basic protocol).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PivotConfig, PivotContext, PivotDecisionTree, predict_batch
from repro.data import make_classification, vertical_partition
from repro.tree import DecisionTree, TreeParams
from repro.tree.metrics import accuracy


def main() -> None:
    # 1. A dataset, split vertically over 3 clients (client 0 keeps labels).
    X, y = make_classification(n_samples=60, n_features=6, n_classes=2, seed=42)
    partition = vertical_partition(X, y, n_clients=3, task="classification")

    # 2. Protocol setup: threshold-Paillier keys, MPC engine, candidate
    #    splits.  Small key size keeps the demo fast; see DESIGN.md.
    config = PivotConfig(
        keysize=256,
        tree=TreeParams(max_depth=3, max_splits=4),
        seed=7,
    )
    context = PivotContext(partition, config)

    # 3. Joint training (Algorithm 3).  No client ever sees another
    #    client's features, the labels, or any plaintext statistic.
    model = PivotDecisionTree(context).fit()
    print("=== released model ===")
    print(model.describe())

    # 4. Joint prediction (Algorithm 4): features stay distributed.
    predictions = predict_batch(model, context, X[:20])
    print("\nsecure prediction accuracy on 20 samples:",
          accuracy(predictions, y[:20]))

    # 5. Sanity: the same tree a non-private CART would have built.
    grid: list[list[float]] = [[] for _ in range(X.shape[1])]
    for ci, cols in enumerate(partition.columns_per_client):
        for local, global_col in enumerate(cols):
            grid[global_col] = context.clients[ci].split_values[local]
    reference = DecisionTree(
        "classification", TreeParams(max_depth=3, max_splits=4)
    ).fit(X, y, split_candidates=grid)
    print("non-private CART accuracy on the same samples:",
          accuracy(reference.predict(X[:20]), y[:20]))

    # 6. What did the protocol cost?
    costs = context.cost_snapshot()
    print("\nprotocol cost:",
          f"{costs['conversions']['threshold_decryptions']} threshold decryptions,",
          f"{costs['mpc']['rounds']} MPC rounds,",
          f"{costs['bus']['bytes'] / 1024:.0f} KiB on the bus")


if __name__ == "__main__":
    main()
