"""Ensemble extensions: Pivot-RF and Pivot-GBDT (paper §7).

Trains a privacy-preserving random forest on a classification task and a
privacy-preserving GBDT on a regression task (energy prediction) through
the federation estimators, comparing both against their non-private
counterparts on identical data.

Run:  python examples/ensemble_models.py
"""

import numpy as np

from repro import (
    Federation,
    Party,
    PivotConfig,
    PivotForestClassifier,
    PivotGBDTRegressor,
)
from repro.data import load_appliances_energy, make_classification
from repro.tree import GBDTRegressor, RandomForest, TreeParams
from repro.tree.metrics import accuracy, mean_squared_error


def main() -> None:
    params = TreeParams(max_depth=2, max_splits=3)

    # --- Pivot-RF on a 3-class task ---------------------------------------
    X, y = make_classification(48, 6, n_classes=3, seed=12)
    rf_parties = [
        Party(X[:, :2], labels=y),
        Party(X[:, 2:4]),
        Party(X[:, 4:]),
    ]
    print("training Pivot-RF (4 trees)...")
    with Federation(
        rf_parties, config=PivotConfig(keysize=256, tree=params, seed=5)
    ) as fed:
        pivot_rf = PivotForestClassifier(
            n_trees=4, sample_fraction=0.7, sample_seed=9
        ).fit(fed)
        rf_acc = accuracy(pivot_rf.predict(fed.slices(X[:24])), y[:24])

    plain_rf = RandomForest(
        "classification", n_trees=4, params=params, sample_fraction=0.7, seed=9
    ).fit(X, y)
    plain_acc = accuracy(plain_rf.predict(X[:24]), y[:24])
    print(f"  Pivot-RF accuracy: {rf_acc:.3f}   NP-RF accuracy: {plain_acc:.3f}")

    # --- Pivot-GBDT on energy regression -----------------------------------
    energy_dataset = load_appliances_energy(200, seed=2).subsample(36, seed=3)
    Xr, yr = energy_dataset.features[:, :6], energy_dataset.labels
    gbdt_parties = [
        Party(Xr[:, :2], labels=yr),
        Party(Xr[:, 2:4]),
        Party(Xr[:, 4:]),
    ]
    print("training Pivot-GBDT (3 boosting rounds, encrypted residuals)...")
    with Federation(
        gbdt_parties,
        task="regression",
        config=PivotConfig(keysize=256, tree=params, seed=6),
    ) as fed:
        pivot_gbdt = PivotGBDTRegressor(n_rounds=3, learning_rate=0.5).fit(fed)
        gbdt_mse = mean_squared_error(
            pivot_gbdt.predict(fed.slices(Xr[:20])), yr[:20]
        )

    plain_gbdt = GBDTRegressor(n_rounds=3, learning_rate=0.5, params=params).fit(
        Xr, yr
    )
    plain_mse = mean_squared_error(plain_gbdt.predict(Xr[:20]), yr[:20])
    variance = float(np.var(yr[:20]))
    print(f"  Pivot-GBDT MSE: {gbdt_mse:.1f}   NP-GBDT MSE: {plain_mse:.1f}"
          f"   label variance: {variance:.1f}")
    print("  (the secure ensemble tracks its plaintext twin; residual labels"
          " were never decrypted)")


if __name__ == "__main__":
    main()
