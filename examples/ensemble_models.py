"""Ensemble extensions: Pivot-RF and Pivot-GBDT (paper §7).

Trains a privacy-preserving random forest on a classification task and a
privacy-preserving GBDT on a regression task (energy prediction), comparing
both against their non-private counterparts on identical data.

Run:  python examples/ensemble_models.py
"""

import numpy as np

from repro import PivotConfig, PivotContext, PivotGBDT, PivotRandomForest
from repro.data import load_appliances_energy, make_classification, vertical_partition
from repro.tree import GBDTRegressor, RandomForest, TreeParams
from repro.tree.metrics import accuracy, mean_squared_error


def main() -> None:
    params = TreeParams(max_depth=2, max_splits=3)

    # --- Pivot-RF on a 3-class task ---------------------------------------
    X, y = make_classification(48, 6, n_classes=3, seed=12)
    partition = vertical_partition(X, y, n_clients=3, task="classification")
    ctx = PivotContext(partition, PivotConfig(keysize=256, tree=params, seed=5))
    print("training Pivot-RF (4 trees)...")
    pivot_rf = PivotRandomForest(ctx, n_trees=4, sample_fraction=0.7, seed=9).fit()
    rf_acc = accuracy(pivot_rf.predict(X[:24]), y[:24])

    plain_rf = RandomForest(
        "classification", n_trees=4, params=params, sample_fraction=0.7, seed=9
    ).fit(X, y)
    plain_acc = accuracy(plain_rf.predict(X[:24]), y[:24])
    print(f"  Pivot-RF accuracy: {rf_acc:.3f}   NP-RF accuracy: {plain_acc:.3f}")

    # --- Pivot-GBDT on energy regression -----------------------------------
    energy = load_appliances_energy(200, seed=2).subsample(36, seed=3)
    partition_r = vertical_partition(
        energy.features[:, :6], energy.labels, n_clients=3, task="regression"
    )
    ctx_r = PivotContext(
        partition_r, PivotConfig(keysize=256, tree=params, seed=6)
    )
    print("training Pivot-GBDT (3 boosting rounds, encrypted residuals)...")
    pivot_gbdt = PivotGBDT(ctx_r, n_rounds=3, learning_rate=0.5).fit()
    gbdt_mse = mean_squared_error(
        pivot_gbdt.predict(energy.features[:20, :6]), energy.labels[:20]
    )

    plain_gbdt = GBDTRegressor(n_rounds=3, learning_rate=0.5, params=params).fit(
        energy.features[:, :6], energy.labels
    )
    plain_mse = mean_squared_error(
        plain_gbdt.predict(energy.features[:20, :6]), energy.labels[:20]
    )
    variance = float(np.var(energy.labels[:20]))
    print(f"  Pivot-GBDT MSE: {gbdt_mse:.1f}   NP-GBDT MSE: {plain_mse:.1f}"
          f"   label variance: {variance:.1f}")
    print("  (the secure ensemble tracks its plaintext twin; residual labels"
          " were never decrypted)")


if __name__ == "__main__":
    main()
