"""Credit scoring across a bank and a fintech (the paper's Figure 1).

A bank (super client: account features + ground-truth default labels) and
a fintech company (transaction features) jointly train a credit model.
The example then demonstrates the paper's §5.1 privacy leakage on the
released plaintext model, and shows that the enhanced protocol (§5.2)
defeats the same attack by hiding thresholds and leaf labels.

Run:  python examples/credit_scoring.py
"""

import numpy as np

from repro import PivotConfig, PivotContext, PivotDecisionTree, predict_enhanced
from repro.core import label_inference_attack
from repro.data import load_credit_card, vertical_partition
from repro.tree import TreeParams
from repro.tree.metrics import accuracy


def main() -> None:
    dataset = load_credit_card(n_samples=400, seed=3).subsample(80, seed=1)
    # Bank = client 0 (labels + demographic columns); fintech = clients 1-2
    # hold the behavioural columns (repayment status, bills, payments) —
    # reverse the column order so the predictive features sit with the
    # fintech, the situation in which §5.1's Example 1 bites.
    features = dataset.features[:, ::-1]
    partition = vertical_partition(
        features, dataset.labels, n_clients=3, task="classification"
    )
    dataset = dataset.__class__(
        dataset.name, features, dataset.labels, dataset.task,
        tuple(reversed(dataset.feature_names)),
    )
    params = TreeParams(max_depth=3, max_splits=4)

    # --- basic protocol: full model released -----------------------------
    basic_ctx = PivotContext(
        partition, PivotConfig(keysize=256, tree=params, seed=11)
    )
    basic_model = PivotDecisionTree(basic_ctx).fit()
    from repro.core import predict_batch

    preds = predict_batch(basic_model, basic_ctx, dataset.features[:30])
    print("basic protocol — model released in plaintext")
    print("  train accuracy (30 samples):",
          accuracy(preds, dataset.labels[:30]))

    # The §5.1 attack: the two fintech clients collude and recover labels of
    # the bank's users along fully-fintech-owned paths.
    attack = label_inference_attack(basic_model, partition, colluding={1, 2})
    print(f"  label-inference attack: recovered labels for "
          f"{attack.n_targets}/{attack.n_population} samples "
          f"({attack.coverage:.0%}) with {attack.accuracy:.0%} accuracy")

    # --- enhanced protocol: thresholds + leaf labels hidden ----------------
    enhanced_ctx = PivotContext(
        partition,
        PivotConfig(keysize=640, tree=params, protocol="enhanced", seed=11),
    )
    enhanced_model = PivotDecisionTree(enhanced_ctx).fit()
    attack2 = label_inference_attack(enhanced_model, partition, colluding={1, 2})
    print("\nenhanced protocol — thresholds and leaf labels concealed")
    print(f"  label-inference attack: recovered "
          f"{attack2.n_targets} labels (coverage {attack2.coverage:.0%})")

    # Prediction still works, over the secret-shared model.
    secure_preds = [
        predict_enhanced(enhanced_model, enhanced_ctx, row)
        for row in dataset.features[:10]
    ]
    print("  secure predictions on 10 applications:", secure_preds)
    print("  ground truth:                         ",
          list(dataset.labels[:10]))


if __name__ == "__main__":
    main()
