"""Credit scoring across a bank and two fintechs (the paper's Figure 1).

A bank (super client: account features + ground-truth default labels) and
two fintech companies (transaction features) jointly train a credit model
through the ``Federation`` API.  The example then demonstrates the paper's
§5.1 privacy leakage on the released plaintext model, and shows that the
enhanced protocol (§5.2) — one ``protocol=`` switch on the estimator —
defeats the same attack by hiding thresholds and leaf labels.

Run:  python examples/credit_scoring.py
"""

import numpy as np

from repro import Federation, Party, PivotClassifier, PivotConfig
from repro.core import label_inference_attack
from repro.data import load_credit_card, vertical_partition
from repro.tree import TreeParams
from repro.tree.metrics import accuracy


def main() -> None:
    dataset = load_credit_card(n_samples=400, seed=3).subsample(80, seed=1)
    # Bank = party 0 (labels + demographic columns); fintechs = parties 1-2
    # hold the behavioural columns (repayment status, bills, payments) —
    # reverse the column order so the predictive features sit with the
    # fintechs, the situation in which §5.1's Example 1 bites.
    features = dataset.features[:, ::-1]
    partition = vertical_partition(
        features, dataset.labels, n_clients=3, task="classification"
    )
    params = TreeParams(max_depth=3, max_splits=4)

    def parties() -> list[Party]:
        names = ("bank", "fintech-a", "fintech-b")
        return [
            Party(
                features[:, list(cols)],
                labels=dataset.labels if i == 0 else None,
                name=names[i],
            )
            for i, cols in enumerate(partition.columns_per_client)
        ]

    # --- basic protocol: full model released -----------------------------
    with Federation(
        parties(), config=PivotConfig(keysize=256, tree=params, seed=11)
    ) as fed:
        basic = PivotClassifier(protocol="basic").fit(fed)
        preds = basic.predict(fed.slices(features[:30]))
        print("basic protocol — model released in plaintext")
        print("  train accuracy (30 samples):",
              accuracy(preds, dataset.labels[:30]))

        # The §5.1 attack: the two fintechs collude and recover labels of
        # the bank's users along fully-fintech-owned paths.
        attack = label_inference_attack(basic.model_, partition, colluding={1, 2})
        print(f"  label-inference attack: recovered labels for "
              f"{attack.n_targets}/{attack.n_population} samples "
              f"({attack.coverage:.0%}) with {attack.accuracy:.0%} accuracy")

    # --- enhanced protocol: thresholds + leaf labels hidden ----------------
    with Federation(
        parties(),
        config=PivotConfig(keysize=640, tree=params, protocol="enhanced", seed=11),
    ) as fed:
        enhanced = PivotClassifier(protocol="enhanced").fit(fed)
        attack2 = label_inference_attack(
            enhanced.model_, partition, colluding={1, 2}
        )
        print("\nenhanced protocol — thresholds and leaf labels concealed")
        print(f"  label-inference attack: recovered "
              f"{attack2.n_targets} labels (coverage {attack2.coverage:.0%})")

        # Prediction still works, over the secret-shared model.
        secure_preds = enhanced.predict(fed.slices(features[:10]))
        print("  secure predictions on 10 applications:", list(secure_preds))
        print("  ground truth:                         ",
              list(dataset.labels[:10]))


if __name__ == "__main__":
    main()
