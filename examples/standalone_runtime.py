"""Every party her own OS process: the standalone runtime quickstart.

The paper's deployment (§8.1) is m autonomous organisations, one machine
each — nobody provisions anybody, nobody schedules anybody.  This example
reproduces that shape end to end on one host:

1. generate one ``partyN.toml`` per party (shared address book, data spec
   and pivot parameters; only the index differs),
2. launch every party — **including the super client** — as a separate
   ``python -m repro.federation.runtime --config partyN.toml`` process,
3. the parties find each other over the TCP mesh, run **distributed
   Paillier keygen** (no trusted dealer: each samples her own shares and
   walks away with her d_i alone — the full private key never exists in
   any process), then train and predict: the super client's process
   drives the flows, every other party *reacts* on her own socket.

The orchestrator process prints a JSON summary on stdout; this script
checks it — the run completed, the model trained, and every process's
key-material audit reports ``full_private_key: false``.

Run:  python examples/standalone_runtime.py
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
N_PARTIES = 3


def launch(config_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.federation.runtime",
         "--config", str(config_path)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT if "--verbose" in sys.argv else None,
        text=True,
    )


def main() -> None:
    sys.path.insert(0, str(REPO / "src"))
    from repro.federation.runtime import write_party_configs

    with tempfile.TemporaryDirectory(prefix="pivot-runtime-") as tmp:
        paths = write_party_configs(
            tmp,
            n_parties=N_PARTIES,
            n_samples=24,
            n_features=6,
            keysize=256,
            max_depth=2,
            max_splits=2,
            predict_rows=6,
            timeout=60.0,
        )
        print(f"configs: {', '.join(p.name for p in paths)} in {tmp}")

        # Parties first (they block in keygen until everyone is up), then
        # the super client's orchestrator process; start order actually
        # does not matter — the peer transport re-dials until its
        # connect_timeout.
        processes = [launch(p) for p in paths[1:]]
        orchestrator = launch(paths[0])
        print(f"launched {N_PARTIES} party processes "
              f"(pids {[p.pid for p in processes + [orchestrator]]})")

        out, _ = orchestrator.communicate(timeout=600)
        for process in processes:
            process.wait(timeout=60)  # exits on the orchestrator's shutdown

        summary = json.loads(out.strip().splitlines()[-1])
        assert summary["ok"], summary
        assert summary["keygen"] == "distributed"
        assert len(summary["predictions"]) == 6
        for index, report in sorted(summary["key_report"].items()):
            assert report["full_private_key"] is False, (
                f"party {index} claims the full private key exists!"
            )
            print(f"party {index} key audit: d_share only, "
                  "full_private_key=False")
        print(f"trained (signature depth ok), score={summary['score']:.3f}, "
              f"{summary['bytes']} protocol bytes, "
              f"{summary['rounds']} rounds")
        codes = [orchestrator.returncode] + [p.returncode for p in processes]
        assert codes == [0] * N_PARTIES, codes
        print("OK: fit+predict with every party standalone from config, "
              "distributed keygen, clean shutdown")


if __name__ == "__main__":
    main()
