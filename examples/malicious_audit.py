"""Malicious-model training with zero-knowledge audits (paper §9.1).

Every client commits to her split-indicator vectors before training and
proves every local computation (POPK/POPCM/POHDP Σ-protocols); the SPDZ
layer runs with information-theoretic MACs.  The example shows an honest
run (which produces exactly the semi-honest protocol's tree) and then two
cheating clients whose deviations are caught and abort the protocol.

Run:  python examples/malicious_audit.py
"""

from repro import PivotConfig, PivotContext, PivotDecisionTree
from repro.core import CheatingClient, MaliciousPivotDecisionTree
from repro.crypto.zkp import ProofError
from repro.data import make_classification, vertical_partition
from repro.tree import TreeParams


def main() -> None:
    X, y = make_classification(16, 3, n_classes=2, seed=9)
    partition = vertical_partition(X, y, n_clients=3, task="classification")
    params = TreeParams(max_depth=2, max_splits=2)

    print("honest run with full verification...")
    ctx = PivotContext(
        partition,
        PivotConfig(keysize=256, tree=params, seed=2, authenticated_mpc=True),
    )
    verified_model = MaliciousPivotDecisionTree(ctx).fit()

    semi_ctx = PivotContext(partition, PivotConfig(keysize=256, tree=params, seed=2))
    semi_model = PivotDecisionTree(semi_ctx).fit()
    same = verified_model.structure_signature() == semi_model.structure_signature()
    print(f"  verified tree equals the semi-honest tree: {same}")

    for step in ("stats", "update"):
        print(f"\nadversarial run: a client lies during the {step!r} step...")
        cheat_ctx = PivotContext(
            partition,
            PivotConfig(keysize=256, tree=params, seed=3, authenticated_mpc=True),
        )
        try:
            CheatingClient(step).train(cheat_ctx)
            print("  !!! deviation went UNDETECTED (this must never print)")
        except ProofError as error:
            print(f"  detected and aborted: {error}")


if __name__ == "__main__":
    main()
