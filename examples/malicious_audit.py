"""Malicious-model training with zero-knowledge audits (paper §9.1).

Every party commits to her split-indicator vectors before training and
proves every local computation (POPK/POPCM/POHDP Σ-protocols); the SPDZ
layer runs with information-theoretic MACs.  With the federation API this
is the estimator's uniform ``malicious=`` hook.  The example shows an
honest run (which produces exactly the semi-honest protocol's tree) and
then two cheating parties whose deviations are caught and abort the
protocol.

Run:  python examples/malicious_audit.py
"""

from repro import Federation, Party, PivotClassifier, PivotConfig
from repro.core import CheatingClient
from repro.crypto.zkp import ProofError
from repro.data import make_classification
from repro.tree import TreeParams


def main() -> None:
    X, y = make_classification(16, 3, n_classes=2, seed=9)
    params = TreeParams(max_depth=2, max_splits=2)

    def parties() -> list[Party]:
        return [
            Party(X[:, :1], labels=y),
            Party(X[:, 1:2]),
            Party(X[:, 2:]),
        ]

    print("honest run with full verification...")
    with Federation(
        parties(),
        config=PivotConfig(keysize=256, tree=params, seed=2, authenticated_mpc=True),
    ) as fed:
        verified = PivotClassifier(malicious=True).fit(fed)

    with Federation(
        parties(), config=PivotConfig(keysize=256, tree=params, seed=2)
    ) as fed:
        semi = PivotClassifier().fit(fed)
    same = (
        verified.model_.structure_signature() == semi.model_.structure_signature()
    )
    print(f"  verified tree equals the semi-honest tree: {same}")

    for step in ("stats", "update"):
        print(f"\nadversarial run: a party lies during the {step!r} step...")
        with Federation(
            parties(),
            config=PivotConfig(
                keysize=256, tree=params, seed=3, authenticated_mpc=True
            ),
        ) as cheat_fed:
            try:
                CheatingClient(step).train(cheat_fed.context)
                print("  !!! deviation went UNDETECTED (this must never print)")
            except ProofError as error:
                print(f"  detected and aborted: {error}")


if __name__ == "__main__":
    main()
